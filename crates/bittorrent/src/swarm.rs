//! The swarm world: BitTorrent clients and a tracker wired onto the emulated network.
//!
//! [`SwarmWorld`] is the [`NetHost`] used by every BitTorrent experiment in the paper's
//! evaluation: it owns the emulated [`Network`], one [`Client`] per participating virtual node
//! and the [`Tracker`], and it dispatches socket events to the protocol logic. Experiments are
//! driven by scheduling client starts ([`schedule_client_start`]) and running the simulation;
//! per-client progress logs and global counters are read back afterwards.

use crate::bitfield::Bitfield;
use crate::client::{Client, ClientConfig, PeerConn};
use crate::messages::{AnnounceEvent, BtPayload, PeerId, PeerMessage, TrackerMessage};
use crate::piece::BlockOutcome;
use crate::torrent::Torrent;
use crate::tracker::Tracker;
use p2plab_net::{
    ConnId, Endpoint, LaneKind, NetHost, NetSim, Network, SocketAddr, TransportEvent, VNodeId,
};
use p2plab_sim::{schedule_periodic, SimTime, TimeSeries};

/// The world of a BitTorrent experiment.
pub struct SwarmWorld {
    /// The emulated network.
    pub net: Network,
    /// All clients (downloaders and seeders).
    pub clients: Vec<Client>,
    /// The tracker.
    pub tracker: Tracker,
    /// Dense vnode → client index lookup (vnode ids are dense arena indices).
    vnode_to_client: Vec<Option<u32>>,
    /// Number of clients added as downloaders (`!initial_seeder`).
    downloaders: usize,
    /// Downloaders that have completed. Kept incrementally: `swarm_finished` is consulted by
    /// every client's periodic timers, so a scan over all clients here would make each timer
    /// tick O(swarm size) — quadratic per round at 10^4 clients.
    completed_downloaders: usize,
}

impl SwarmWorld {
    /// Creates a swarm world with a tracker hosted on `tracker_vnode`.
    pub fn new(net: Network, tracker_vnode: VNodeId) -> SwarmWorld {
        let vnode_to_client = vec![None; net.vnode_count()];
        SwarmWorld {
            net,
            clients: Vec::new(),
            tracker: Tracker::new(tracker_vnode),
            vnode_to_client,
            downloaders: 0,
            completed_downloaders: 0,
        }
    }

    /// The tracker's socket address on the emulated network.
    pub fn tracker_addr(&self) -> SocketAddr {
        SocketAddr::new(self.net.addr_of(self.tracker.vnode), self.tracker.port)
    }

    /// Adds a client on `vnode`. `complete` makes it an initial seeder. Returns its index.
    pub fn add_client(
        &mut self,
        vnode: VNodeId,
        torrent: Torrent,
        complete: bool,
        config: ClientConfig,
    ) -> usize {
        let idx = self.clients.len();
        let tracker_addr = self.tracker_addr();
        self.clients.push(Client::new(
            PeerId(idx as u32),
            vnode,
            torrent,
            complete,
            tracker_addr,
            config,
        ));
        if self.vnode_to_client.len() <= vnode.0 {
            self.vnode_to_client.resize(vnode.0 + 1, None);
        }
        self.vnode_to_client[vnode.0] = Some(idx as u32);
        if !complete {
            self.downloaders += 1;
        }
        idx
    }

    /// The client running on a virtual node, if any.
    pub fn client_on(&self, vnode: VNodeId) -> Option<usize> {
        self.vnode_to_client
            .get(vnode.0)
            .copied()
            .flatten()
            .map(|i| i as usize)
    }

    /// Number of downloaders (clients that started incomplete).
    pub fn leecher_count(&self) -> usize {
        self.clients.iter().filter(|c| !c.initial_seeder).count()
    }

    /// Number of downloaders that have completed.
    pub fn completed_count(&self) -> usize {
        debug_assert_eq!(
            self.completed_downloaders,
            self.clients
                .iter()
                .filter(|c| !c.initial_seeder && c.completed_at.is_some())
                .count(),
            "incremental completion count drifted"
        );
        self.completed_downloaders
    }

    /// True once every downloader has finished (vacuously true with no downloaders).
    /// O(1): maintained by the completion path, not recomputed.
    pub fn swarm_finished(&self) -> bool {
        self.completed_count() >= self.downloaders
    }

    /// Sum of application bytes downloaded by all clients (the quantity of Figure 9).
    pub fn total_bytes_downloaded(&self) -> u64 {
        self.clients.iter().map(|c| c.stats.bytes_downloaded).sum()
    }

    /// Sum of application bytes uploaded by all clients.
    pub fn total_bytes_uploaded(&self) -> u64 {
        self.clients.iter().map(|c| c.stats.bytes_uploaded).sum()
    }

    /// Completion times of all finished downloaders, sorted.
    pub fn completion_times(&self) -> Vec<SimTime> {
        let mut times: Vec<SimTime> = self
            .clients
            .iter()
            .filter(|c| !c.initial_seeder)
            .filter_map(|c| c.completed_at)
            .collect();
        times.sort();
        times
    }

    /// The "clients having completed their download" step curve of Figure 11.
    pub fn completion_curve(&self) -> TimeSeries {
        let mut series = TimeSeries::new();
        series.push(SimTime::ZERO, 0.0);
        for (i, t) in self.completion_times().into_iter().enumerate() {
            series.push(t, (i + 1) as f64);
        }
        series
    }
}

/// The simulation type every BitTorrent experiment runs on: [`SwarmWorld`] with the network
/// substrate's pooled [`p2plab_net::NetEvent`] class.
pub type SwarmSim = NetSim<SwarmWorld>;

impl NetHost for SwarmWorld {
    type Payload = BtPayload;

    fn network(&mut self) -> &mut Network {
        &mut self.net
    }

    fn on_transport_event(sim: &mut SwarmSim, node: VNodeId, event: TransportEvent<BtPayload>) {
        if node == sim.world().tracker.vnode {
            handle_tracker_event(sim, event);
        } else if let Some(idx) = sim.world().client_on(node) {
            handle_client_event(sim, idx, event);
        }
    }
}

/// Schedules a client to start at `at` (the paper starts clients at fixed intervals).
pub fn schedule_client_start(sim: &mut SwarmSim, idx: usize, at: SimTime) {
    sim.schedule_at(at, move |sim| start_client(sim, idx));
}

/// Starts (or restarts, after churn) a client: bind + listen, announce to the tracker, start
/// the choker and re-announce timers. Restarting keeps the pieces already downloaded, as a real
/// client restarted on the same download directory would.
pub fn start_client(sim: &mut SwarmSim, idx: usize) {
    let now = sim.now();
    let (vnode, listen_port, choke_interval, tracker_interval, already_online) = {
        let client = &mut sim.world_mut().clients[idx];
        let already_online = client.online;
        client.online = true;
        if client.started_at.is_none() {
            client.started_at = Some(now);
        }
        let percent = client.percent_done();
        client.progress.push(now, percent);
        (
            client.vnode,
            client.config.listen_port,
            client.config.choke_interval,
            client.config.tracker_interval,
            already_online,
        )
    };
    if already_online {
        return;
    }
    let generation = {
        let client = &mut sim.world_mut().clients[idx];
        client.timer_generation += 1;
        client.timer_generation
    };
    let _ = Endpoint::new(vnode).bind(sim, listen_port);
    announce(sim, idx, AnnounceEvent::Started);

    schedule_periodic(sim, now + choke_interval, choke_interval, move |sim| {
        choke_round(sim, idx, generation)
    });
    schedule_periodic(sim, now + tracker_interval, tracker_interval, move |sim| {
        periodic_announce(sim, idx, generation)
    });
}

/// Stops a client (session end under churn, or the end of an experiment): announces `Stopped`,
/// closes every peer connection, and lets its timers stop at the next tick.
pub fn stop_client(sim: &mut SwarmSim, idx: usize) {
    if !sim.world().clients[idx].online {
        return;
    }
    announce(sim, idx, AnnounceEvent::Stopped);
    let (vnode, conns) = {
        let client = &mut sim.world_mut().clients[idx];
        client.online = false;
        client.connecting.clear();
        let conns: Vec<ConnId> = client.peers.keys().copied().collect();
        (client.vnode, conns)
    };
    for conn in conns {
        let _ = Endpoint::new(vnode).close(sim, conn);
        drop_peer(sim, idx, conn);
    }
}

fn handle_tracker_event(sim: &mut SwarmSim, event: TransportEvent<BtPayload>) {
    if let TransportEvent::Datagram {
        from,
        payload:
            BtPayload::Tracker(TrackerMessage::Announce {
                peer_id,
                port,
                event,
                left,
                numwant,
            }),
        ..
    } = event
    {
        let now = sim.now();
        let (world, rng) = sim.world_and_rng();
        let peer_addr = SocketAddr::new(from.addr, port);
        let peers = world
            .tracker
            .handle_announce(now, peer_id, peer_addr, event, left, numwant, rng);
        let tracker_vnode = world.tracker.vnode;
        let tracker_port = world.tracker.port;
        let response = TrackerMessage::Response {
            peers,
            interval_secs: 120,
        };
        let size = response.wire_size();
        let _ = Endpoint::new(tracker_vnode).send_datagram(
            sim,
            tracker_port,
            from,
            size,
            BtPayload::Tracker(response),
        );
    }
}

fn handle_client_event(sim: &mut SwarmSim, idx: usize, event: TransportEvent<BtPayload>) {
    match event {
        TransportEvent::Connected { conn, peer } => {
            let (vnode, over_limit, num_pieces, rate_window) = {
                let client = &mut sim.world_mut().clients[idx];
                client.connecting.remove(&peer);
                (
                    client.vnode,
                    client.peers.len() >= client.config.max_connections || !client.online,
                    client.pieces.torrent().num_pieces(),
                    client.config.rate_window,
                )
            };
            if over_limit {
                let _ = Endpoint::new(vnode).close(sim, conn);
                return;
            }
            {
                let client = &mut sim.world_mut().clients[idx];
                let mut pc = PeerConn::new(conn, peer, true, num_pieces, rate_window);
                pc.sent_handshake = true;
                client.peers.insert(conn, pc);
            }
            let (our_id, our_bitfield) = {
                let client = &sim.world().clients[idx];
                (client.id, advertised_bitfield(client))
            };
            send_peer(sim, idx, conn, PeerMessage::Handshake { peer_id: our_id });
            send_peer(
                sim,
                idx,
                conn,
                PeerMessage::Bitfield(Box::new(our_bitfield)),
            );
        }
        TransportEvent::Accepted { conn, peer } => {
            let (vnode, over_limit, num_pieces, rate_window, online) = {
                let client = &sim.world().clients[idx];
                (
                    client.vnode,
                    client.peers.len() >= client.config.max_connections,
                    client.pieces.torrent().num_pieces(),
                    client.config.rate_window,
                    client.online,
                )
            };
            if over_limit || !online {
                let _ = Endpoint::new(vnode).close(sim, conn);
                return;
            }
            let client = &mut sim.world_mut().clients[idx];
            client.peers.insert(
                conn,
                PeerConn::new(conn, peer, false, num_pieces, rate_window),
            );
        }
        TransportEvent::Refused { peer, .. } => {
            sim.world_mut().clients[idx].connecting.remove(&peer);
        }
        TransportEvent::Closed { conn } => {
            drop_peer(sim, idx, conn);
        }
        TransportEvent::Message {
            conn,
            payload: BtPayload::Peer(msg),
            ..
        } => {
            handle_peer_message(sim, idx, conn, msg);
        }
        TransportEvent::Datagram {
            payload: BtPayload::Tracker(TrackerMessage::Response { peers, .. }),
            ..
        } => {
            handle_tracker_response(sim, idx, peers);
        }
        _ => {}
    }
}

fn drop_peer(sim: &mut SwarmSim, idx: usize, conn: ConnId) {
    let client = &mut sim.world_mut().clients[idx];
    if let Some(p) = client.peers.remove(&conn) {
        client.pieces.remove_peer_bitfield(&p.bitfield);
        client.pieces.release_requests(&p.inflight);
    }
}

fn handle_peer_message(sim: &mut SwarmSim, idx: usize, conn: ConnId, msg: PeerMessage) {
    match msg {
        PeerMessage::Handshake { peer_id } => {
            let reply = {
                let client = &mut sim.world_mut().clients[idx];
                match client.peers.get_mut(&conn) {
                    Some(p) => {
                        p.handshaken = true;
                        p.peer_id = Some(peer_id);
                        if !p.sent_handshake {
                            p.sent_handshake = true;
                            true
                        } else {
                            false
                        }
                    }
                    None => false,
                }
            };
            if reply {
                let (our_id, our_bitfield) = {
                    let client = &sim.world().clients[idx];
                    (client.id, advertised_bitfield(client))
                };
                send_peer(sim, idx, conn, PeerMessage::Handshake { peer_id: our_id });
                send_peer(
                    sim,
                    idx,
                    conn,
                    PeerMessage::Bitfield(Box::new(our_bitfield)),
                );
            }
        }
        PeerMessage::Bitfield(bf) => {
            {
                let client = &mut sim.world_mut().clients[idx];
                if let Some(p) = client.peers.get_mut(&conn) {
                    client.pieces.remove_peer_bitfield(&p.bitfield);
                    p.bitfield = *bf;
                    client.pieces.add_peer_bitfield(&p.bitfield);
                }
            }
            update_interest(sim, idx, conn);
        }
        PeerMessage::Have(piece) => {
            {
                let client = &mut sim.world_mut().clients[idx];
                if let Some(p) = client.peers.get_mut(&conn) {
                    if piece < p.bitfield.len() && p.bitfield.set(piece) {
                        client.pieces.add_peer_have(piece);
                    }
                }
            }
            update_interest(sim, idx, conn);
            request_blocks(sim, idx, conn);
        }
        PeerMessage::Choke => {
            let client = &mut sim.world_mut().clients[idx];
            if let Some(p) = client.peers.get_mut(&conn) {
                p.peer_choking = true;
                // Requests already accepted by the peer are usually answered anyway (the data is
                // in flight on its upload link), so keep them reserved instead of immediately
                // re-requesting the same blocks elsewhere; the stale-request sweep reclaims them
                // if they never arrive. This mirrors mainline behaviour and avoids duplicate
                // transfers on every choke/unchoke rotation.
            }
        }
        PeerMessage::Unchoke => {
            {
                let client = &mut sim.world_mut().clients[idx];
                if let Some(p) = client.peers.get_mut(&conn) {
                    p.peer_choking = false;
                }
            }
            request_blocks(sim, idx, conn);
        }
        PeerMessage::Interested => {
            let client = &mut sim.world_mut().clients[idx];
            if let Some(p) = client.peers.get_mut(&conn) {
                p.peer_interested = true;
            }
        }
        PeerMessage::NotInterested => {
            let client = &mut sim.world_mut().clients[idx];
            if let Some(p) = client.peers.get_mut(&conn) {
                p.peer_interested = false;
            }
        }
        PeerMessage::Request { piece, block } => {
            let respond = {
                let client = &mut sim.world_mut().clients[idx];
                if client.misbehavior.withhold_serves {
                    // A withholding byzantine serve path: the request is accepted by the
                    // transport but never answered, so the requester's timeout machinery has
                    // to re-issue the block elsewhere.
                    client.stats.requests_ignored += 1;
                    None
                } else {
                    match client.peers.get(&conn) {
                        Some(p)
                            if !p.am_choking
                                && piece < client.pieces.have().len()
                                && client.pieces.have().get(piece) =>
                        {
                            Some((
                                client.pieces.torrent().block_len(piece, block),
                                client.misbehavior.corrupt_data,
                            ))
                        }
                        _ => None,
                    }
                }
            };
            if let Some((data_len, corrupt)) = respond {
                send_peer(
                    sim,
                    idx,
                    conn,
                    PeerMessage::Piece {
                        piece,
                        block,
                        data_len,
                        corrupt,
                    },
                );
            }
        }
        PeerMessage::Piece {
            piece,
            block,
            data_len,
            corrupt,
        } => {
            handle_piece(sim, idx, conn, piece, block, data_len, corrupt);
        }
        PeerMessage::Cancel { .. } | PeerMessage::KeepAlive => {}
    }
}

/// The bitfield a client advertises: its real holdings, or — for a garbage-advertising
/// byzantine client — an all-set lie (requests for pieces it does not actually have are
/// filtered out by the serve path's `have` check and go unanswered).
fn advertised_bitfield(client: &Client) -> Bitfield {
    if client.misbehavior.garbage_advertise {
        Bitfield::full(client.pieces.torrent().num_pieces())
    } else {
        client.pieces.have().clone()
    }
}

fn handle_piece(
    sim: &mut SwarmSim,
    idx: usize,
    conn: ConnId,
    piece: u32,
    block: u32,
    data_len: u32,
    corrupt: bool,
) {
    let now = sim.now();
    if corrupt {
        // The block fails the piece-hash check: reject it before it reaches the piece manager
        // (no corruption is ever accepted), retract the lying peer's claim to the piece so the
        // picker re-requests the block from someone else, and release the reservation.
        let client = &mut sim.world_mut().clients[idx];
        let Some(p) = client.peers.get_mut(&conn) else {
            return;
        };
        p.inflight.retain(|&b| b != (piece, block));
        p.download.record(now, data_len as u64);
        client.stats.corrupted_blocks_rejected += 1;
        if p.bitfield.clear(piece) {
            client.pieces.remove_peer_have(piece);
        }
        client.pieces.release_requests(&[(piece, block)]);
        request_blocks(sim, idx, conn);
        return;
    }
    let (completed_piece, file_complete, broadcast_conns) = {
        let client = &mut sim.world_mut().clients[idx];
        let Some(p) = client.peers.get_mut(&conn) else {
            return;
        };
        p.inflight.retain(|&b| b != (piece, block));
        p.download.record(now, data_len as u64);
        p.blocks_received += 1;
        client.stats.bytes_downloaded += data_len as u64;
        client.stats.blocks_downloaded += 1;
        let outcome = client.pieces.block_received(piece, block);
        let (completed_piece, file_complete) = match outcome {
            BlockOutcome::Duplicate => {
                client.stats.duplicate_blocks += 1;
                (None, false)
            }
            BlockOutcome::Progress => (None, false),
            BlockOutcome::PieceComplete(p) => (Some(p), false),
            BlockOutcome::FileComplete(p) => (Some(p), true),
        };
        let mut broadcast = Vec::new();
        if completed_piece.is_some() {
            client.progress.push(now, client.percent_done());
            broadcast = client
                .peers
                .values()
                .filter(|p| p.handshaken)
                .map(|p| p.conn)
                .collect();
        }
        if file_complete {
            client.completed_at = Some(now);
        }
        (completed_piece, file_complete, broadcast)
    };

    if let Some(done_piece) = completed_piece {
        for c in &broadcast_conns {
            send_peer(sim, idx, *c, PeerMessage::Have(done_piece));
        }
        // Our interest in some peers may have ended with this piece.
        for c in broadcast_conns {
            update_interest(sim, idx, c);
        }
    }
    if file_complete {
        // The client's `completed_at` was just set above; `initial_seeder`s never complete
        // (their blocks are all duplicates), so this counts downloaders exactly.
        sim.world_mut().completed_downloaders += 1;
        announce(sim, idx, AnnounceEvent::Completed);
    }
    request_blocks(sim, idx, conn);
}

fn update_interest(sim: &mut SwarmSim, idx: usize, conn: ConnId) {
    let change = {
        let client = &mut sim.world_mut().clients[idx];
        match client.peers.get_mut(&conn) {
            Some(p) if p.handshaken => {
                let interested = client.pieces.have().is_interested_in(&p.bitfield);
                if interested != p.am_interested {
                    p.am_interested = interested;
                    Some(interested)
                } else {
                    None
                }
            }
            _ => None,
        }
    };
    match change {
        Some(true) => send_peer(sim, idx, conn, PeerMessage::Interested),
        Some(false) => send_peer(sim, idx, conn, PeerMessage::NotInterested),
        None => {}
    }
}

fn request_blocks(sim: &mut SwarmSim, idx: usize, conn: ConnId) {
    let now = sim.now();
    let requests = {
        let (world, rng) = sim.world_and_rng();
        let client = &mut world.clients[idx];
        match client.peers.get_mut(&conn) {
            Some(p) if p.handshaken && p.am_interested && !p.peer_choking => {
                let budget = client
                    .config
                    .request_pipeline
                    .saturating_sub(p.inflight.len());
                let picked = client.pieces.pick_blocks(&p.bitfield, budget, now, rng);
                // Endgame mode may hand back blocks this very peer already has in flight;
                // re-requesting them from the same peer would only waste its upload link.
                let picked: Vec<(u32, u32)> = picked
                    .into_iter()
                    .filter(|b| !p.inflight.contains(b))
                    .collect();
                p.inflight.extend(picked.iter().copied());
                picked
            }
            _ => Vec::new(),
        }
    };
    for (piece, block) in requests {
        send_peer(sim, idx, conn, PeerMessage::Request { piece, block });
    }
}

/// One 10-second choker round. Returns false once the client is offline or the whole swarm has
/// finished, which stops the periodic timer (and therefore lets the simulation drain).
fn choke_round(sim: &mut SwarmSim, idx: usize, generation: u64) -> bool {
    let now = sim.now();
    let keep_running = {
        let world = sim.world();
        let client = &world.clients[idx];
        client.online && client.timer_generation == generation && !world.swarm_finished()
    };
    if !keep_running {
        return false;
    }
    let choke_msgs = {
        let (world, rng) = sim.world_and_rng();
        let client = &mut world.clients[idx];
        let timeout = client.config.request_timeout;
        client.pieces.release_stale_requests(now, timeout);
        let mut snapshot = std::mem::take(&mut client.snapshot_scratch);
        client.choker_snapshot_into(now, &mut snapshot);
        let seeding = client.is_seeding();
        let unchoked = client.choker.run_round(&snapshot, seeding, rng);
        client.snapshot_scratch = snapshot;
        let mut msgs = Vec::new();
        for p in client.peers.values_mut() {
            if !p.handshaken {
                continue;
            }
            let should_unchoke = unchoked.contains(&p.conn);
            if should_unchoke && p.am_choking {
                p.am_choking = false;
                msgs.push((p.conn, PeerMessage::Unchoke));
            } else if !should_unchoke && !p.am_choking {
                p.am_choking = true;
                msgs.push((p.conn, PeerMessage::Choke));
            }
        }
        msgs
    };
    for (conn, msg) in choke_msgs {
        send_peer(sim, idx, conn, msg);
    }
    // Keep the request pipeline full towards every peer that is currently serving us.
    let active: Vec<ConnId> = sim.world().clients[idx]
        .peers
        .values()
        .filter(|p| p.handshaken && p.am_interested && !p.peer_choking)
        .map(|p| p.conn)
        .collect();
    for conn in active {
        request_blocks(sim, idx, conn);
    }
    connect_to_peers(sim, idx);
    true
}

/// Periodic tracker re-announce. Returns false once the client is offline or the swarm finished.
fn periodic_announce(sim: &mut SwarmSim, idx: usize, generation: u64) -> bool {
    let (keep_running, need_peers) = {
        let world = sim.world();
        let client = &world.clients[idx];
        (
            client.online && client.timer_generation == generation && !world.swarm_finished(),
            client.peers.len() < client.config.min_peers,
        )
    };
    if !keep_running {
        return false;
    }
    if need_peers {
        announce(sim, idx, AnnounceEvent::Periodic);
    }
    true
}

fn announce(sim: &mut SwarmSim, idx: usize, event: AnnounceEvent) {
    let (vnode, listen_port, tracker_addr, msg) = {
        let client = &mut sim.world_mut().clients[idx];
        client.stats.announces += 1;
        let msg = TrackerMessage::Announce {
            peer_id: client.id,
            port: client.config.listen_port,
            event,
            left: client.pieces.bytes_left(),
            numwant: client.config.numwant,
        };
        (
            client.vnode,
            client.config.listen_port,
            client.tracker_addr,
            msg,
        )
    };
    let size = msg.wire_size();
    let _ = Endpoint::new(vnode).send_datagram(
        sim,
        listen_port,
        tracker_addr,
        size,
        BtPayload::Tracker(msg),
    );
}

fn handle_tracker_response(sim: &mut SwarmSim, idx: usize, peers: Vec<SocketAddr>) {
    {
        let world = sim.world_mut();
        let own_addr = SocketAddr::new(
            world.net.addr_of(world.clients[idx].vnode),
            world.clients[idx].config.listen_port,
        );
        let client = &mut world.clients[idx];
        for p in peers {
            if p != own_addr && !client.known_peers.contains(&p) {
                client.known_peers.push(p);
            }
        }
    }
    connect_to_peers(sim, idx);
}

fn connect_to_peers(sim: &mut SwarmSim, idx: usize) {
    let targets = {
        let (world, rng) = sim.world_and_rng();
        let client = &world.clients[idx];
        if !client.wants_more_peers() {
            Vec::new()
        } else {
            let mut candidates = client.unconnected_known_peers();
            rng.shuffle(&mut candidates);
            let budget = client
                .config
                .max_initiate
                .saturating_sub(client.peers.len() + client.connecting.len());
            candidates.truncate(budget);
            candidates
        }
    };
    for target in targets {
        let vnode = {
            let client = &mut sim.world_mut().clients[idx];
            client.connecting.insert(target);
            client.stats.connect_attempts += 1;
            client.vnode
        };
        if Endpoint::new(vnode).connect(sim, target).is_err() {
            sim.world_mut().clients[idx].connecting.remove(&target);
        }
    }
}

fn send_peer(sim: &mut SwarmSim, idx: usize, conn: ConnId, msg: PeerMessage) {
    let now = sim.now();
    let size = msg.wire_size();
    let vnode = {
        let client = &mut sim.world_mut().clients[idx];
        if let PeerMessage::Piece { data_len, .. } = &msg {
            if let Some(p) = client.peers.get_mut(&conn) {
                p.upload.record(now, *data_len as u64);
                p.blocks_sent += 1;
            }
            client.stats.bytes_uploaded += *data_len as u64;
            client.stats.blocks_uploaded += 1;
        }
        client.vnode
    };
    // Peer-wire messages travel on the ordered reliable lane — the legacy data path, so the
    // ported client's wire costs and event stream are byte-identical.
    let _ = Endpoint::new(vnode).send(
        sim,
        conn,
        LaneKind::ReliableOrdered,
        size,
        BtPayload::Peer(msg),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2plab_net::{AccessLinkClass, GroupId, NetworkConfig, TopologySpec, VirtAddr};
    use p2plab_sim::{SimDuration, Simulation};

    /// Builds a swarm of `seeders + leechers` clients plus a tracker, folded onto `machines`
    /// physical machines, all on the given access link, sharing a `total_bytes` torrent.
    fn build_swarm(
        machines: usize,
        seeders: usize,
        leechers: usize,
        link: AccessLinkClass,
        total_bytes: u64,
    ) -> SwarmWorld {
        let n = seeders + leechers + 1; // + tracker
        let topo = TopologySpec::uniform("swarm", n, link);
        let mut net = Network::new(NetworkConfig::default(), topo);
        let machine_ids: Vec<_> = (0..machines)
            .map(|m| net.add_machine(format!("pm{m}"), VirtAddr::new(192, 168, 38, m as u8 + 1)))
            .collect();
        let mut vnodes = Vec::new();
        for i in 0..n {
            let addr = VirtAddr::new(10, 0, 0, 0).offset(i as u32 + 1);
            let vid = net
                .add_vnode(machine_ids[i % machines], addr, GroupId(0))
                .unwrap();
            vnodes.push(vid);
        }
        let torrent = Torrent::new("test", total_bytes);
        let mut world = SwarmWorld::new(net, vnodes[0]);
        for i in 0..seeders {
            world.add_client(
                vnodes[1 + i],
                torrent.clone(),
                true,
                ClientConfig::default(),
            );
        }
        for i in 0..leechers {
            world.add_client(
                vnodes[1 + seeders + i],
                torrent.clone(),
                false,
                ClientConfig::default(),
            );
        }
        world
    }

    /// A fast symmetric link so unit-level swarm tests finish in little virtual time.
    fn fast_link() -> AccessLinkClass {
        AccessLinkClass::symmetric(20_000_000, SimDuration::from_millis(5))
    }

    fn start_all(sim: &mut SwarmSim, stagger: SimDuration) {
        let n = sim.world().clients.len();
        for i in 0..n {
            schedule_client_start(sim, i, SimTime::ZERO + stagger * i as u64);
        }
    }

    #[test]
    fn single_leecher_downloads_from_seeder() {
        let world = build_swarm(2, 1, 1, fast_link(), 1024 * 1024);
        let mut sim: SwarmSim = Simulation::with_events(world, 11);
        start_all(&mut sim, SimDuration::from_secs(1));
        let outcome = sim.run_until(SimTime::from_secs(600));
        assert!(sim.world().swarm_finished(), "outcome={outcome:?}");
        let leecher = &sim.world().clients[1];
        assert!(leecher.is_seeding());
        assert_eq!(leecher.stats.bytes_downloaded, 1024 * 1024);
        assert!(leecher.completed_at.unwrap() > leecher.started_at.unwrap());
        // The seeder uploaded everything the leecher downloaded.
        let seeder = &sim.world().clients[0];
        assert_eq!(seeder.stats.bytes_uploaded, 1024 * 1024);
        assert_eq!(seeder.stats.bytes_downloaded, 0);
    }

    #[test]
    fn progress_log_is_monotonic_and_complete() {
        let world = build_swarm(2, 1, 2, fast_link(), 512 * 1024);
        let mut sim: SwarmSim = Simulation::with_events(world, 12);
        start_all(&mut sim, SimDuration::from_secs(1));
        sim.run_until(SimTime::from_secs(600));
        assert!(sim.world().swarm_finished());
        for c in sim.world().clients.iter().filter(|c| !c.initial_seeder) {
            let samples = c.progress.samples();
            assert!(samples.len() >= 2, "at least start and completion samples");
            assert!(
                samples.windows(2).all(|w| w[0].1 <= w[1].1),
                "monotonic progress"
            );
            assert_eq!(samples.last().unwrap().1, 100.0);
            assert_eq!(samples[0].1, 0.0);
        }
    }

    #[test]
    fn swarm_of_four_leechers_completes_and_shares() {
        // An upload-constrained link (1 Mbps up, 10 Mbps down) and a 2 MB file: the seeder alone
        // cannot serve four copies quickly, so cooperation between leechers must appear.
        let link = AccessLinkClass::new(10_000_000, 1_000_000, SimDuration::from_millis(5));
        let file = 2 * 1024 * 1024u64;
        let world = build_swarm(3, 1, 4, link, file);
        let mut sim: SwarmSim = Simulation::with_events(world, 13);
        start_all(&mut sim, SimDuration::from_secs(2));
        let outcome = sim.run_until(SimTime::from_secs(2000));
        assert!(sim.world().swarm_finished(), "outcome={outcome:?}");
        assert_eq!(sim.world().completed_count(), 4);
        // Conservation: every downloaded byte was uploaded by someone.
        let world = sim.world();
        assert_eq!(world.total_bytes_downloaded(), world.total_bytes_uploaded());
        assert!(world.total_bytes_downloaded() >= 4 * file);
        // Peer-to-peer sharing happened: the seeder did not serve all four copies alone.
        let seeder_up = world.clients[0].stats.bytes_uploaded;
        assert!(
            seeder_up < 4 * file,
            "leechers must reciprocate, seeder uploaded {seeder_up}"
        );
        let leecher_up: u64 = world
            .clients
            .iter()
            .filter(|c| !c.initial_seeder)
            .map(|c| c.stats.bytes_uploaded)
            .sum();
        assert!(leecher_up > 0, "leechers must upload to each other");
    }

    #[test]
    fn completion_curve_counts_finishers() {
        let world = build_swarm(2, 1, 3, fast_link(), 512 * 1024);
        let mut sim: SwarmSim = Simulation::with_events(world, 14);
        start_all(&mut sim, SimDuration::from_secs(1));
        sim.run_until(SimTime::from_secs(2000));
        let curve = sim.world().completion_curve();
        assert_eq!(curve.last().unwrap().1, 3.0);
        assert_eq!(curve.value_at(SimTime::ZERO, 0.0), 0.0);
        let times = sim.world().completion_times();
        assert_eq!(times.len(), 3);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn no_seeder_means_no_completion() {
        let world = build_swarm(2, 0, 3, fast_link(), 512 * 1024);
        let mut sim: SwarmSim = Simulation::with_events(world, 15);
        start_all(&mut sim, SimDuration::from_secs(1));
        sim.run_until(SimTime::from_secs(300));
        assert_eq!(sim.world().completed_count(), 0);
        assert_eq!(sim.world().total_bytes_downloaded(), 0);
    }

    #[test]
    fn tracker_learns_about_all_clients() {
        let world = build_swarm(2, 1, 3, fast_link(), 512 * 1024);
        let mut sim: SwarmSim = Simulation::with_events(world, 16);
        start_all(&mut sim, SimDuration::from_secs(1));
        sim.run_until(SimTime::from_secs(60));
        assert_eq!(sim.world().tracker.member_count(), 4);
        assert!(sim.world().tracker.stats().announces >= 4);
    }

    #[test]
    fn completed_clients_keep_seeding_others() {
        // With a slow seeder and two leechers, the first finisher must help the second (the
        // paper: "when the clients have finished the download of the file, they stay online and
        // become seeders").
        let world = build_swarm(2, 1, 2, fast_link(), 2 * 1024 * 1024);
        let mut sim: SwarmSim = Simulation::with_events(world, 17);
        start_all(&mut sim, SimDuration::from_secs(1));
        sim.run_until(SimTime::from_secs(2000));
        assert!(sim.world().swarm_finished());
        let c1 = &sim.world().clients[1];
        let c2 = &sim.world().clients[2];
        let uploads_after_completion = c1.stats.bytes_uploaded > 0 || c2.stats.bytes_uploaded > 0;
        assert!(uploads_after_completion);
    }

    #[test]
    fn dsl_swarm_roughly_upload_bound() {
        // One seeder + 3 leechers on the paper's DSL profile with a small 1 MB file: the
        // completion time should be within a factor of ~3 of the upload-capacity bound
        // (128 kbps aggregate per uploader), and far above the download-capacity bound.
        let world = build_swarm(2, 1, 3, AccessLinkClass::bittorrent_dsl(), 1024 * 1024);
        let mut sim: SwarmSim = Simulation::with_events(world, 18);
        start_all(&mut sim, SimDuration::from_secs(5));
        let outcome = sim.run_until(SimTime::from_secs(4000));
        assert!(sim.world().swarm_finished(), "outcome={outcome:?}");
        let last = *sim.world().completion_times().last().unwrap();
        let download_bound = 1024.0 * 1024.0 * 8.0 / 2_000_000.0; // ~4 s
        let upload_bound = 1024.0 * 1024.0 * 8.0 / 128_000.0; // ~65 s if one uploader at a time
        assert!(
            last.as_secs_f64() > 3.0 * download_bound,
            "too fast: {last}"
        );
        assert!(last.as_secs_f64() < 5.0 * upload_bound, "too slow: {last}");
    }
}
