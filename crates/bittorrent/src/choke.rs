//! The choking algorithm (tit-for-tat reciprocation).
//!
//! BitTorrent's "complex reciprocation system" (the paper's words) is what makes downloaders
//! cooperate: every 10 seconds a client unchokes the interested peers that upload to it fastest
//! (three of them), plus one *optimistic unchoke* rotated every 30 seconds so that new peers get
//! a chance to prove themselves. A seeder has nothing to reciprocate for, so it unchokes the
//! peers it uploads to fastest (spreading data as quickly as possible), again with rotation.

use p2plab_net::ConnId;
use p2plab_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Choking policy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChokeConfig {
    /// Number of regular (reciprocation-based) unchoke slots.
    pub regular_slots: usize,
    /// Number of optimistic unchoke slots.
    pub optimistic_slots: usize,
    /// How many choker rounds an optimistic unchoke lasts (mainline: 3 rounds of 10 s = 30 s).
    pub optimistic_rounds: u32,
}

impl Default for ChokeConfig {
    fn default() -> Self {
        ChokeConfig {
            regular_slots: 3,
            optimistic_slots: 1,
            optimistic_rounds: 3,
        }
    }
}

/// The ablation variant: no choking at all — every interested peer is unchoked. Used by the
/// `choking_ablation` bench to show why the reciprocation system matters.
pub fn no_choking() -> ChokeConfig {
    ChokeConfig {
        regular_slots: usize::MAX,
        optimistic_slots: 0,
        optimistic_rounds: 1,
    }
}

/// What the choker needs to know about one connected peer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeerSnapshot {
    /// The connection to the peer.
    pub conn: ConnId,
    /// Whether the peer is interested in our data (only interested peers take slots).
    pub interested: bool,
    /// Bytes per second the peer recently uploaded to us.
    pub download_rate: f64,
    /// Bytes per second we recently uploaded to the peer.
    pub upload_rate: f64,
}

/// The per-client choker state.
#[derive(Debug, Clone)]
pub struct Choker {
    config: ChokeConfig,
    round: u32,
    optimistic: Option<ConnId>,
}

impl Choker {
    /// Creates a choker.
    pub fn new(config: ChokeConfig) -> Choker {
        Choker {
            config,
            round: 0,
            optimistic: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ChokeConfig {
        &self.config
    }

    /// The current optimistic unchoke, if any.
    pub fn optimistic(&self) -> Option<ConnId> {
        self.optimistic
    }

    /// Runs one choker round and returns the set of peers to unchoke.
    ///
    /// `seeding` selects the seeder policy (rank by upload rate to the peer) instead of the
    /// leecher policy (rank by download rate from the peer).
    pub fn run_round(
        &mut self,
        peers: &[PeerSnapshot],
        seeding: bool,
        rng: &mut SimRng,
    ) -> Vec<ConnId> {
        self.round += 1;
        let mut interested: Vec<&PeerSnapshot> = peers.iter().filter(|p| p.interested).collect();
        if self.config.regular_slots == usize::MAX {
            // Ablation mode: unchoke everyone who is interested.
            return interested.iter().map(|p| p.conn).collect();
        }
        // Rank by the policy-relevant rate, ties broken by connection id for determinism.
        interested.sort_by(|a, b| {
            let (ra, rb) = if seeding {
                (a.upload_rate, b.upload_rate)
            } else {
                (a.download_rate, b.download_rate)
            };
            rb.partial_cmp(&ra)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.conn.cmp(&b.conn))
        });
        let mut unchoked: Vec<ConnId> = interested
            .iter()
            .take(self.config.regular_slots)
            .map(|p| p.conn)
            .collect();

        if self.config.optimistic_slots > 0 {
            let rotate =
                self.round % self.config.optimistic_rounds == 1 || self.optimistic.is_none();
            let still_valid = self
                .optimistic
                .map(|c| peers.iter().any(|p| p.conn == c && p.interested))
                .unwrap_or(false);
            if rotate || !still_valid {
                let candidates: Vec<ConnId> = interested
                    .iter()
                    .map(|p| p.conn)
                    .filter(|c| !unchoked.contains(c))
                    .collect();
                self.optimistic = rng.choose(&candidates).copied();
            }
            if let Some(opt) = self.optimistic {
                if !unchoked.contains(&opt) {
                    unchoked.push(opt);
                }
            }
        }
        unchoked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(id: u64, interested: bool, down: f64, up: f64) -> PeerSnapshot {
        PeerSnapshot {
            conn: ConnId(id),
            interested,
            download_rate: down,
            upload_rate: up,
        }
    }

    #[test]
    fn leecher_unchokes_best_uploaders() {
        let mut choker = Choker::new(ChokeConfig::default());
        let mut rng = SimRng::new(1);
        let peers = vec![
            peer(1, true, 100.0, 0.0),
            peer(2, true, 500.0, 0.0),
            peer(3, true, 300.0, 0.0),
            peer(4, true, 200.0, 0.0),
            peer(5, true, 50.0, 0.0),
        ];
        let unchoked = choker.run_round(&peers, false, &mut rng);
        // Three regular slots go to the three fastest uploaders.
        assert!(unchoked.contains(&ConnId(2)));
        assert!(unchoked.contains(&ConnId(3)));
        assert!(unchoked.contains(&ConnId(4)));
        // Plus exactly one optimistic among the rest.
        assert_eq!(unchoked.len(), 4);
        let optimistic = choker.optimistic().unwrap();
        assert!(optimistic == ConnId(1) || optimistic == ConnId(5));
    }

    #[test]
    fn uninterested_peers_never_take_slots() {
        let mut choker = Choker::new(ChokeConfig::default());
        let mut rng = SimRng::new(1);
        let peers = vec![peer(1, false, 1000.0, 0.0), peer(2, true, 10.0, 0.0)];
        let unchoked = choker.run_round(&peers, false, &mut rng);
        assert!(!unchoked.contains(&ConnId(1)));
        assert!(unchoked.contains(&ConnId(2)));
    }

    #[test]
    fn seeder_ranks_by_upload_rate() {
        let mut choker = Choker::new(ChokeConfig {
            optimistic_slots: 0,
            ..Default::default()
        });
        let mut rng = SimRng::new(1);
        let peers = vec![
            peer(1, true, 0.0, 10.0),
            peer(2, true, 0.0, 500.0),
            peer(3, true, 0.0, 300.0),
            peer(4, true, 0.0, 100.0),
        ];
        let unchoked = choker.run_round(&peers, true, &mut rng);
        assert_eq!(unchoked.len(), 3);
        assert!(unchoked.contains(&ConnId(2)));
        assert!(unchoked.contains(&ConnId(3)));
        assert!(unchoked.contains(&ConnId(4)));
    }

    #[test]
    fn optimistic_unchoke_rotates_over_rounds() {
        let mut choker = Choker::new(ChokeConfig::default());
        let mut rng = SimRng::new(42);
        // Many equal peers with zero rates: the three regular slots are arbitrary, the
        // optimistic one must visit different peers over many rounds.
        let peers: Vec<PeerSnapshot> = (0..20).map(|i| peer(i, true, 0.0, 0.0)).collect();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..30 {
            choker.run_round(&peers, false, &mut rng);
            if let Some(o) = choker.optimistic() {
                seen.insert(o);
            }
        }
        assert!(
            seen.len() >= 3,
            "optimistic unchoke should rotate, saw {seen:?}"
        );
    }

    #[test]
    fn optimistic_kept_between_rotations() {
        let mut choker = Choker::new(ChokeConfig::default());
        let mut rng = SimRng::new(5);
        let peers: Vec<PeerSnapshot> = (0..10).map(|i| peer(i, true, i as f64, 0.0)).collect();
        choker.run_round(&peers, false, &mut rng);
        let first = choker.optimistic();
        // Round 2 and 3 are within the same 30 s optimistic period.
        choker.run_round(&peers, false, &mut rng);
        assert_eq!(choker.optimistic(), first);
        choker.run_round(&peers, false, &mut rng);
        assert_eq!(choker.optimistic(), first);
    }

    #[test]
    fn no_choking_ablation_unchokes_everyone() {
        let mut choker = Choker::new(no_choking());
        let mut rng = SimRng::new(1);
        let peers: Vec<PeerSnapshot> = (0..50).map(|i| peer(i, true, 0.0, 0.0)).collect();
        let unchoked = choker.run_round(&peers, false, &mut rng);
        assert_eq!(unchoked.len(), 50);
    }

    #[test]
    fn empty_peer_set() {
        let mut choker = Choker::new(ChokeConfig::default());
        let mut rng = SimRng::new(1);
        assert!(choker.run_round(&[], false, &mut rng).is_empty());
        assert!(choker.optimistic().is_none());
    }
}
