//! Piece/block bookkeeping and the piece-selection policy.
//!
//! The selection policy follows the mainline client the paper uses: *strict priority* (finish
//! partially downloaded pieces first), *random first pieces* (until a few pieces are complete,
//! pick at random so a new peer quickly has something to reciprocate with), *rarest first*
//! afterwards (pick the piece owned by the fewest peers), and *endgame mode* (once every block
//! has been requested, outstanding blocks may be requested from several peers in parallel).

use crate::bitfield::Bitfield;
use crate::torrent::Torrent;
use p2plab_sim::{SimDuration, SimRng, SimTime};
use std::collections::BTreeMap;

/// Number of complete pieces below which the client picks pieces at random rather than
/// rarest-first (mainline's "random first piece" policy).
pub const RANDOM_FIRST_PIECES: u32 = 4;

/// Result of recording a received block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockOutcome {
    /// The block was a duplicate (endgame or retransmission); nothing changed.
    Duplicate,
    /// The block was new but its piece is still incomplete.
    Progress,
    /// The block completed its piece.
    PieceComplete(u32),
    /// The block completed the piece *and* the whole file.
    FileComplete(u32),
}

/// How many peers may have the same block outstanding in endgame mode. Mainline bounds the
/// duplication with `cancel` messages; the model caps the number of parallel requests instead.
pub const MAX_ENDGAME_DUPLICATION: u8 = 2;

#[derive(Debug, Clone, Copy)]
struct BlockRequest {
    first_at: SimTime,
    count: u8,
}

#[derive(Debug, Clone)]
struct PartialPiece {
    received: Bitfield,
    /// Outstanding request per block (indexed by block number — pieces have a small, fixed
    /// block count, so an array beats a hash map in the per-block hot loops), with the first
    /// request time and how many peers have the request outstanding.
    requested: Vec<Option<BlockRequest>>,
}

impl PartialPiece {
    fn new(blocks: u32) -> PartialPiece {
        PartialPiece {
            received: Bitfield::new(blocks),
            requested: vec![None; blocks as usize],
        }
    }

    /// Blocks neither received nor requested — the quantity the endgame test sums.
    fn uncovered(&self) -> u64 {
        (0..self.requested.len() as u32)
            .filter(|&b| !self.received.get(b) && self.requested[b as usize].is_none())
            .count() as u64
    }
}

/// Per-client piece state and selection logic.
#[derive(Debug, Clone)]
pub struct PieceManager {
    torrent: Torrent,
    have: Bitfield,
    /// In-progress pieces. A BTreeMap so iteration is already in piece order (strict-priority
    /// candidates need no per-call sort).
    partial: BTreeMap<u32, PartialPiece>,
    /// How many connected peers have each piece (availability for rarest-first).
    availability: Vec<u32>,
    bytes_done: u64,
    /// Blocks that are neither owned nor currently requested, over the whole torrent —
    /// maintained incrementally so the endgame test is O(1) instead of a scan per pick.
    uncovered_blocks: u64,
    /// Scratch buffer reused by `pick_blocks` (in-progress candidates, then fresh pieces).
    candidates: Vec<u32>,
}

impl PieceManager {
    /// Creates the piece state of a fresh leecher (`complete = false`) or a seeder
    /// (`complete = true`).
    pub fn new(torrent: Torrent, complete: bool) -> PieceManager {
        let n = torrent.num_pieces();
        let have = if complete {
            Bitfield::full(n)
        } else {
            Bitfield::new(n)
        };
        let bytes_done = if complete { torrent.total_bytes } else { 0 };
        let uncovered_blocks = if complete {
            0
        } else {
            (0..n).map(|p| torrent.blocks_in_piece(p) as u64).sum()
        };
        PieceManager {
            availability: vec![0; n as usize],
            partial: BTreeMap::new(),
            have,
            torrent,
            bytes_done,
            uncovered_blocks,
            candidates: Vec::new(),
        }
    }

    /// The torrent this manager tracks.
    pub fn torrent(&self) -> &Torrent {
        &self.torrent
    }

    /// The client's own bitfield.
    pub fn have(&self) -> &Bitfield {
        &self.have
    }

    /// True once every piece is complete.
    pub fn is_complete(&self) -> bool {
        self.have.is_full()
    }

    /// Bytes of verified data downloaded (or owned, for a seeder).
    pub fn bytes_done(&self) -> u64 {
        self.bytes_done
    }

    /// Bytes still missing.
    pub fn bytes_left(&self) -> u64 {
        self.torrent.total_bytes - self.bytes_done
    }

    /// Download progress in percent (0-100), the quantity plotted in Figures 8 and 10.
    pub fn percent_done(&self) -> f64 {
        100.0 * self.bytes_done as f64 / self.torrent.total_bytes as f64
    }

    /// Registers a peer's full bitfield in the availability counts.
    pub fn add_peer_bitfield(&mut self, bf: &Bitfield) {
        for i in bf.iter_set() {
            self.availability[i as usize] += 1;
        }
    }

    /// Removes a disconnected peer's bitfield from the availability counts.
    pub fn remove_peer_bitfield(&mut self, bf: &Bitfield) {
        for i in bf.iter_set() {
            self.availability[i as usize] = self.availability[i as usize].saturating_sub(1);
        }
    }

    /// Registers a single `have` announcement from a peer.
    pub fn add_peer_have(&mut self, piece: u32) {
        self.availability[piece as usize] += 1;
    }

    /// Retracts a single piece claim from a peer — used when a served block fails the hash
    /// check and the claim turns out to be a lie.
    pub fn remove_peer_have(&mut self, piece: u32) {
        self.availability[piece as usize] = self.availability[piece as usize].saturating_sub(1);
    }

    /// Current availability (number of connected peers owning each piece).
    pub fn availability(&self) -> &[u32] {
        &self.availability
    }

    /// True once every block is either owned or currently requested — the endgame condition.
    /// O(1): the uncovered-block count is maintained incrementally by every request/receive/
    /// release (and checked against a full recount in debug builds).
    pub fn in_endgame(&self) -> bool {
        debug_assert_eq!(
            self.uncovered_blocks,
            self.recount_uncovered(),
            "incremental uncovered-block count drifted"
        );
        !self.is_complete() && self.uncovered_blocks == 0
    }

    /// The slow recount backing the `in_endgame` debug assertion.
    fn recount_uncovered(&self) -> u64 {
        self.have
            .iter_missing()
            .map(|p| match self.partial.get(&p) {
                Some(pp) => pp.uncovered(),
                None => self.torrent.blocks_in_piece(p) as u64,
            })
            .sum()
    }

    /// Picks up to `max` blocks to request from a peer owning `peer_have`, marking them as
    /// requested at `now`. Blocks already requested from other peers are skipped unless
    /// endgame mode is active.
    pub fn pick_blocks(
        &mut self,
        peer_have: &Bitfield,
        max: usize,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Vec<(u32, u32)> {
        if max == 0 || self.is_complete() {
            return Vec::new();
        }
        let endgame = self.in_endgame();
        let mut picked = Vec::with_capacity(max);

        // Candidate pieces, in one reused scratch buffer: strict priority first (blocks of
        // pieces already in progress; BTreeMap iteration is already in piece order), then
        // fresh pieces.
        let mut candidates = std::mem::take(&mut self.candidates);
        candidates.clear();
        candidates.extend(
            self.partial
                .keys()
                .copied()
                .filter(|&p| peer_have.get(p) && !self.have.get(p)),
        );
        let fresh_start = candidates.len();
        candidates.extend(
            self.have
                .iter_missing_in(peer_have)
                .filter(|p| !self.partial.contains_key(p)),
        );
        // Fresh pieces: random while we own few pieces, rarest-first afterwards.
        let fresh = &mut candidates[fresh_start..];
        if self.have.count() < RANDOM_FIRST_PIECES {
            rng.shuffle(fresh);
        } else {
            fresh.sort_by_key(|&p| (self.availability[p as usize], p));
            // Shuffle ties so that identical availability does not make every client converge
            // on the same piece (mainline breaks ties randomly).
            let mut i = 0;
            while i < fresh.len() {
                let mut j = i + 1;
                while j < fresh.len()
                    && self.availability[fresh[j] as usize] == self.availability[fresh[i] as usize]
                {
                    j += 1;
                }
                rng.shuffle(&mut fresh[i..j]);
                i = j;
            }
        }

        for &piece in &candidates {
            if picked.len() >= max {
                break;
            }
            let blocks = self.torrent.blocks_in_piece(piece);
            let entry = self
                .partial
                .entry(piece)
                .or_insert_with(|| PartialPiece::new(blocks));
            for b in 0..blocks {
                if picked.len() >= max {
                    break;
                }
                if entry.received.get(b) {
                    continue;
                }
                match &mut entry.requested[b as usize] {
                    slot @ None => {
                        *slot = Some(BlockRequest {
                            first_at: now,
                            count: 1,
                        });
                        self.uncovered_blocks -= 1;
                        picked.push((piece, b));
                    }
                    Some(req) if endgame && req.count < MAX_ENDGAME_DUPLICATION => {
                        req.count += 1;
                        picked.push((piece, b));
                    }
                    Some(_) => {}
                }
            }
        }
        self.candidates = candidates;
        picked
    }

    /// Records a received block. Returns what the block achieved.
    pub fn block_received(&mut self, piece: u32, block: u32) -> BlockOutcome {
        if self.have.get(piece) {
            return BlockOutcome::Duplicate;
        }
        let blocks = self.torrent.blocks_in_piece(piece);
        let entry = self
            .partial
            .entry(piece)
            .or_insert_with(|| PartialPiece::new(blocks));
        if !entry.received.set(block) {
            return BlockOutcome::Duplicate;
        }
        if entry.requested[block as usize].take().is_none() {
            // A block that was never requested (or whose request timed out) stops being
            // uncovered the moment it is owned.
            self.uncovered_blocks -= 1;
        }
        self.bytes_done += self.torrent.block_len(piece, block) as u64;
        if entry.received.is_full() {
            self.partial.remove(&piece);
            self.have.set(piece);
            if self.have.is_full() {
                BlockOutcome::FileComplete(piece)
            } else {
                BlockOutcome::PieceComplete(piece)
            }
        } else {
            BlockOutcome::Progress
        }
    }

    /// Releases requested-but-not-received blocks older than `timeout`, so they can be requested
    /// again (from another peer). Returns how many requests were released.
    pub fn release_stale_requests(&mut self, now: SimTime, timeout: SimDuration) -> usize {
        let mut released = 0;
        for pp in self.partial.values_mut() {
            for b in 0..pp.requested.len() {
                if let Some(req) = pp.requested[b] {
                    if now.saturating_since(req.first_at) > timeout {
                        pp.requested[b] = None;
                        if !pp.received.get(b as u32) {
                            self.uncovered_blocks += 1;
                        }
                        released += 1;
                    }
                }
            }
        }
        released
    }

    /// Releases every outstanding request issued to a disconnected peer (identified by the exact
    /// blocks it had in flight).
    pub fn release_requests(&mut self, blocks: &[(u32, u32)]) {
        for &(piece, block) in blocks {
            if let Some(pp) = self.partial.get_mut(&piece) {
                if pp.requested[block as usize].take().is_some() && !pp.received.get(block) {
                    self.uncovered_blocks += 1;
                }
            }
        }
    }

    /// True if the client still needs this block (used to suppress duplicate endgame data).
    pub fn needs_block(&self, piece: u32, block: u32) -> bool {
        if self.have.get(piece) {
            return false;
        }
        match self.partial.get(&piece) {
            Some(pp) => !pp.received.get(block),
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(7)
    }

    fn small_torrent() -> Torrent {
        // 4 pieces of 256 KB, 16 blocks each.
        Torrent::new("t", 1024 * 1024)
    }

    #[test]
    fn seeder_starts_complete() {
        let pm = PieceManager::new(small_torrent(), true);
        assert!(pm.is_complete());
        assert_eq!(pm.percent_done(), 100.0);
        assert_eq!(pm.bytes_left(), 0);
        assert!(!pm.in_endgame());
    }

    #[test]
    fn leecher_downloads_whole_file() {
        let t = small_torrent();
        let mut pm = PieceManager::new(t.clone(), false);
        let seeder = Bitfield::full(t.num_pieces());
        pm.add_peer_bitfield(&seeder);
        let mut r = rng();
        let mut done = false;
        let mut received = 0u64;
        while !done {
            let blocks = pm.pick_blocks(&seeder, 8, SimTime::ZERO, &mut r);
            assert!(
                !blocks.is_empty(),
                "must always find blocks while incomplete"
            );
            for (p, b) in blocks {
                received += 1;
                match pm.block_received(p, b) {
                    BlockOutcome::FileComplete(_) => done = true,
                    BlockOutcome::Duplicate => panic!("unexpected duplicate"),
                    _ => {}
                }
            }
        }
        assert!(pm.is_complete());
        assert_eq!(received, t.total_blocks());
        assert_eq!(pm.bytes_done(), t.total_bytes);
    }

    #[test]
    fn rarest_first_prefers_rare_pieces() {
        let t = Torrent::paper_16mb();
        let mut pm = PieceManager::new(t.clone(), false);
        // Pretend we already have several pieces so random-first-piece mode is over.
        for p in 0..RANDOM_FIRST_PIECES {
            for b in 0..t.blocks_in_piece(p) {
                pm.block_received(p, b);
            }
        }
        // Everyone has every piece except piece 10, which only our peer has.
        let common = Bitfield::full(t.num_pieces());
        for _ in 0..10 {
            let mut bf = common.clone();
            bf.clear(10);
            pm.add_peer_bitfield(&bf);
        }
        let peer = Bitfield::full(t.num_pieces());
        pm.add_peer_bitfield(&peer);
        let mut r = rng();
        let picked = pm.pick_blocks(&peer, 4, SimTime::ZERO, &mut r);
        assert!(picked.iter().all(|&(p, _)| p == 10), "picked={picked:?}");
    }

    #[test]
    fn strict_priority_finishes_partial_pieces_first() {
        let t = Torrent::paper_16mb();
        let mut pm = PieceManager::new(t.clone(), false);
        let peer = Bitfield::full(t.num_pieces());
        pm.add_peer_bitfield(&peer);
        // Receive one block of piece 5 without having requested the rest.
        pm.block_received(5, 0);
        let mut r = rng();
        let picked = pm.pick_blocks(&peer, 3, SimTime::ZERO, &mut r);
        assert!(picked.iter().all(|&(p, _)| p == 5), "picked={picked:?}");
        assert!(!picked.contains(&(5, 0)));
    }

    #[test]
    fn duplicate_requests_suppressed_outside_endgame() {
        let t = small_torrent();
        let mut pm = PieceManager::new(t.clone(), false);
        let peer = Bitfield::full(t.num_pieces());
        pm.add_peer_bitfield(&peer);
        let mut r = rng();
        let first = pm.pick_blocks(&peer, 10, SimTime::ZERO, &mut r);
        let second = pm.pick_blocks(&peer, 10, SimTime::ZERO, &mut r);
        for b in &first {
            assert!(
                !second.contains(b),
                "block {b:?} requested twice outside endgame"
            );
        }
    }

    #[test]
    fn endgame_allows_parallel_requests() {
        // Tiny torrent: 2 blocks total.
        let t = Torrent {
            name: "tiny".into(),
            total_bytes: 32 * 1024,
            piece_size: 32 * 1024,
            block_size: 16 * 1024,
        };
        let mut pm = PieceManager::new(t.clone(), false);
        let peer = Bitfield::full(1);
        pm.add_peer_bitfield(&peer);
        let mut r = rng();
        let first = pm.pick_blocks(&peer, 10, SimTime::ZERO, &mut r);
        assert_eq!(first.len(), 2);
        assert!(pm.in_endgame());
        // A second peer can now request the same outstanding blocks.
        let second = pm.pick_blocks(&peer, 10, SimTime::ZERO, &mut r);
        assert_eq!(second.len(), 2);
    }

    #[test]
    fn stale_requests_are_released() {
        let t = small_torrent();
        let mut pm = PieceManager::new(t.clone(), false);
        let peer = Bitfield::full(t.num_pieces());
        pm.add_peer_bitfield(&peer);
        let mut r = rng();
        let picked = pm.pick_blocks(&peer, 4, SimTime::ZERO, &mut r);
        assert_eq!(picked.len(), 4);
        // Nothing released before the timeout.
        assert_eq!(
            pm.release_stale_requests(SimTime::from_secs(10), SimDuration::from_secs(60)),
            0
        );
        assert_eq!(
            pm.release_stale_requests(SimTime::from_secs(100), SimDuration::from_secs(60)),
            4
        );
        // The same blocks can be picked again afterwards.
        let again = pm.pick_blocks(&peer, 4, SimTime::from_secs(100), &mut r);
        assert_eq!(again.len(), 4);
    }

    #[test]
    fn release_requests_for_disconnected_peer() {
        let t = small_torrent();
        let mut pm = PieceManager::new(t.clone(), false);
        let peer = Bitfield::full(t.num_pieces());
        let mut r = rng();
        let picked = pm.pick_blocks(&peer, 6, SimTime::ZERO, &mut r);
        pm.release_requests(&picked);
        let again = pm.pick_blocks(&peer, 6, SimTime::ZERO, &mut r);
        assert_eq!(picked.len(), again.len());
    }

    #[test]
    fn availability_tracking() {
        let t = small_torrent();
        let mut pm = PieceManager::new(t.clone(), false);
        let mut bf = Bitfield::new(t.num_pieces());
        bf.set(1);
        pm.add_peer_bitfield(&bf);
        pm.add_peer_have(1);
        pm.add_peer_have(2);
        assert_eq!(pm.availability()[1], 2);
        assert_eq!(pm.availability()[2], 1);
        pm.remove_peer_bitfield(&bf);
        assert_eq!(pm.availability()[1], 1);
        assert_eq!(pm.availability()[0], 0);
    }

    #[test]
    fn needs_block_reflects_state() {
        let t = small_torrent();
        let mut pm = PieceManager::new(t, false);
        assert!(pm.needs_block(0, 0));
        pm.block_received(0, 0);
        assert!(!pm.needs_block(0, 0));
        assert!(pm.needs_block(0, 1));
    }
}
