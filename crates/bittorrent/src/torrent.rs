//! Torrent metadata (the subset of a metainfo file the experiments need).
//!
//! The paper's experiments distribute a 16 MB file; BitTorrent always splits the file into
//! 256 KB pieces, and clients transfer pieces in 16 KiB blocks. The exact content does not
//! matter to the dynamics, so pieces carry sizes rather than data.

use serde::{Deserialize, Serialize};

/// The piece size the paper quotes ("the file is always divided in pieces of 256 KB").
pub const DEFAULT_PIECE_SIZE: u32 = 256 * 1024;
/// The block ("sub-piece") size BitTorrent requests: 16 KiB.
pub const DEFAULT_BLOCK_SIZE: u32 = 16 * 1024;

/// Metadata of the distributed file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Torrent {
    /// Torrent name (for reports).
    pub name: String,
    /// Total file size in bytes.
    pub total_bytes: u64,
    /// Piece size in bytes.
    pub piece_size: u32,
    /// Block (request granularity) size in bytes.
    pub block_size: u32,
}

impl Torrent {
    /// Creates a torrent with the default piece and block sizes.
    pub fn new(name: impl Into<String>, total_bytes: u64) -> Torrent {
        Torrent {
            name: name.into(),
            total_bytes,
            piece_size: DEFAULT_PIECE_SIZE,
            block_size: DEFAULT_BLOCK_SIZE,
        }
    }

    /// The 16 MB file used throughout the paper's BitTorrent experiments.
    pub fn paper_16mb() -> Torrent {
        Torrent::new("paper-16MB", 16 * 1024 * 1024)
    }

    /// Number of pieces.
    pub fn num_pieces(&self) -> u32 {
        self.total_bytes.div_ceil(self.piece_size as u64) as u32
    }

    /// Size in bytes of piece `piece` (the last piece may be shorter).
    pub fn piece_len(&self, piece: u32) -> u32 {
        assert!(piece < self.num_pieces(), "piece index out of range");
        let start = piece as u64 * self.piece_size as u64;
        (self.total_bytes - start).min(self.piece_size as u64) as u32
    }

    /// Number of blocks in piece `piece`.
    pub fn blocks_in_piece(&self, piece: u32) -> u32 {
        self.piece_len(piece).div_ceil(self.block_size)
    }

    /// Size in bytes of block `block` of piece `piece`.
    pub fn block_len(&self, piece: u32, block: u32) -> u32 {
        assert!(
            block < self.blocks_in_piece(piece),
            "block index out of range"
        );
        let start = block * self.block_size;
        (self.piece_len(piece) - start).min(self.block_size)
    }

    /// Total number of blocks in the torrent.
    pub fn total_blocks(&self) -> u64 {
        (0..self.num_pieces())
            .map(|p| self.blocks_in_piece(p) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_torrent_geometry() {
        let t = Torrent::paper_16mb();
        assert_eq!(t.num_pieces(), 64);
        assert_eq!(t.piece_len(0), 256 * 1024);
        assert_eq!(t.piece_len(63), 256 * 1024);
        assert_eq!(t.blocks_in_piece(0), 16);
        assert_eq!(t.block_len(0, 0), 16 * 1024);
        assert_eq!(t.total_blocks(), 64 * 16);
    }

    #[test]
    fn irregular_last_piece() {
        // 1 MB + 100 KB file: 5 pieces, the last one short.
        let t = Torrent::new("odd", 1024 * 1024 + 100 * 1024);
        assert_eq!(t.num_pieces(), 5);
        assert_eq!(t.piece_len(4), 100 * 1024);
        assert_eq!(t.blocks_in_piece(4), 7);
        assert_eq!(t.block_len(4, 6), 100 * 1024 - 6 * 16 * 1024);
        // All block lengths over all pieces sum to the file size.
        let sum: u64 = (0..t.num_pieces())
            .flat_map(|p| (0..t.blocks_in_piece(p)).map(move |b| (p, b)))
            .map(|(p, b)| t.block_len(p, b) as u64)
            .sum();
        assert_eq!(sum, t.total_bytes);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn piece_index_checked() {
        Torrent::paper_16mb().piece_len(64);
    }
}
