//! Figure-level benchmarks: every table and figure of the paper's evaluation, exercised at a
//! reduced scale so `cargo bench` regenerates the full set quickly. The full-scale runs live in
//! the `fig*` binaries of this crate.

use criterion::{criterion_group, criterion_main, Criterion};
use p2plab_core::{
    compare_folding, figure7_latency_experiment, interception_overhead, rule_scaling_experiment,
    run_swarm_experiment, SwarmExperiment,
};
use p2plab_os::experiments::{figure1_sweep, figure2_sweep, figure3_fairness};
use p2plab_os::SchedulerKind;
use std::hint::black_box;

fn small_swarm(name: &str, leechers: usize, machines: usize) -> SwarmExperiment {
    let mut cfg = SwarmExperiment::quick();
    cfg.name = name.into();
    cfg.leechers = leechers;
    cfg.machines = machines;
    cfg.file_bytes = 1024 * 1024;
    cfg
}

fn bench_figure1(c: &mut Criterion) {
    c.bench_function("figure1_cpu_scaling_point", |b| {
        b.iter(|| black_box(figure1_sweep(SchedulerKind::Bsd4, &[200])))
    });
}

fn bench_figure2(c: &mut Criterion) {
    c.bench_function("figure2_memory_scaling_point", |b| {
        b.iter(|| black_box(figure2_sweep(SchedulerKind::Bsd4, &[50])))
    });
}

fn bench_figure3(c: &mut Criterion) {
    c.bench_function("figure3_fairness_cdf", |b| {
        b.iter(|| black_box(figure3_fairness(SchedulerKind::Ule)))
    });
}

fn bench_intercept_table(c: &mut Criterion) {
    c.bench_function("table_interception_overhead", |b| {
        b.iter(|| black_box(interception_overhead()))
    });
}

fn bench_figure6(c: &mut Criterion) {
    c.bench_function("figure6_rule_scaling_sweep", |b| {
        b.iter(|| black_box(rule_scaling_experiment(&[0, 10_000, 30_000], 3)))
    });
}

fn bench_figure7(c: &mut Criterion) {
    c.bench_function("figure7_latency_decomposition", |b| {
        b.iter(|| black_box(figure7_latency_experiment(20, 3)))
    });
}

fn bench_figure8(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure8_swarm");
    group.sample_size(10);
    group.bench_function("12_clients_1MB", |b| {
        let cfg = small_swarm("bench-fig8", 12, 13);
        b.iter(|| black_box(run_swarm_experiment(&cfg)))
    });
    group.finish();
}

fn bench_figure9(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure9_folding");
    group.sample_size(10);
    group.bench_function("folding_1_vs_15_per_machine", |b| {
        let spread = small_swarm("bench-fig9-spread", 12, 15);
        let folded = small_swarm("bench-fig9-folded", 12, 1);
        b.iter(|| {
            let a = run_swarm_experiment(&spread);
            let b_ = run_swarm_experiment(&folded);
            black_box(compare_folding(&a, &[&b_]))
        })
    });
    group.finish();
}

fn bench_figure10_11(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure10_11_large_swarm");
    group.sample_size(10);
    group.bench_function("scaled_0_01", |b| {
        // ~58 clients folded 32:1, the same shape as the paper's 5754-client run.
        let cfg = SwarmExperiment::paper_figure10(0.01);
        b.iter(|| {
            let r = run_swarm_experiment(&cfg);
            black_box((r.completion_curve.len(), r.completed))
        })
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_figure1,
    bench_figure2,
    bench_figure3,
    bench_intercept_table,
    bench_figure6,
    bench_figure7,
    bench_figure8,
    bench_figure9,
    bench_figure10_11
);
criterion_main!(figures);
