//! Micro-benchmarks of the emulation substrate: the discrete-event engine, the dummynet pipe
//! and IPFW firewall models (the mechanism behind Figure 6), the libc-interception cost model
//! (the paper's overhead table) and the BitTorrent piece picker.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2plab_bittorrent::{Bitfield, PieceManager, Torrent};
use p2plab_net::{
    Direction, Firewall, InterceptConfig, Pipe, PipeConfig, PipeId, Rule, Subnet, VirtAddr,
};
use p2plab_os::SyscallCostModel;
use p2plab_sim::{SimDuration, SimRng, SimTime, Simulation};
use std::hint::black_box;

fn bench_event_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine");
    for &n in &[1_000u64, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("schedule_and_run", n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = Simulation::new(0u64, 42);
                for i in 0..n {
                    sim.schedule_in(SimDuration::from_micros(i % 1000), |sim| {
                        *sim.world_mut() += 1;
                    });
                }
                sim.run();
                black_box(*sim.world())
            })
        });
    }
    group.finish();
}

fn bench_pipe(c: &mut Criterion) {
    c.bench_function("dummynet_pipe_enqueue", |b| {
        let mut pipe = Pipe::new(
            PipeConfig::shaped(128_000, SimDuration::from_millis(30)).with_queue_limit(None),
        );
        let mut rng = SimRng::new(1);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(pipe.enqueue(SimTime::from_micros(t), 16 * 1024, &mut rng))
        })
    });
}

fn bench_firewall(c: &mut Criterion) {
    // The Figure 6 mechanism: classification cost grows linearly with the rule count.
    let mut group = c.benchmark_group("ipfw_classify");
    for &rules in &[10usize, 1_000, 10_000, 50_000] {
        group.bench_with_input(BenchmarkId::from_parameter(rules), &rules, |b, &rules| {
            let mut fw = Firewall::new(SimDuration::from_nanos(50));
            fw.add_dummy_rules(rules);
            fw.add_rule(Rule::pipe(
                Subnet::host(VirtAddr::new(10, 0, 0, 1)),
                Subnet::any(),
                Direction::Out,
                PipeId(0),
            ));
            let src = VirtAddr::new(10, 0, 0, 1);
            let dst = VirtAddr::new(10, 0, 0, 2);
            b.iter(|| black_box(fw.classify(src, dst, Direction::Out)))
        });
    }
    group.finish();
}

fn bench_interception(c: &mut Criterion) {
    // The paper's overhead table: connect/disconnect cycle with and without the libc shim.
    let model = SyscallCostModel::freebsd_opteron();
    let mut group = c.benchmark_group("intercept_overhead");
    group.bench_function("plain_connect_cycle", |b| {
        b.iter(|| black_box(InterceptConfig::disabled().connect_cycle_cost(&model)))
    });
    group.bench_function("intercepted_connect_cycle", |b| {
        b.iter(|| black_box(InterceptConfig::enabled().connect_cycle_cost(&model)))
    });
    group.finish();
}

fn bench_piece_picker(c: &mut Criterion) {
    let torrent = Torrent::paper_16mb();
    c.bench_function("rarest_first_pick_blocks", |b| {
        let mut rng = SimRng::new(3);
        let mut pm = PieceManager::new(torrent.clone(), false);
        let peer = Bitfield::full(torrent.num_pieces());
        for _ in 0..20 {
            pm.add_peer_bitfield(&peer);
        }
        b.iter(|| {
            let picked = pm.pick_blocks(&peer, 5, SimTime::ZERO, &mut rng);
            pm.release_requests(&picked);
            black_box(picked)
        })
    });
}

criterion_group!(
    benches,
    bench_event_engine,
    bench_pipe,
    bench_firewall,
    bench_interception,
    bench_piece_picker
);
criterion_main!(benches);
