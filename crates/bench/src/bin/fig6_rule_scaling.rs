//! Figure 6: measured round-trip time between two nodes as the number of firewall rules on the
//! sending node varies (0 to 50 000). IPFW evaluates rules linearly, so the RTT grows linearly.
//!
//! ```text
//! cargo run --release -p p2plab-bench --bin fig6_rule_scaling
//! ```

use p2plab_bench::write_results_file;
use p2plab_core::{points_to_csv, render_table, rule_scaling_experiment};

fn main() {
    let rule_counts = [
        0usize, 5_000, 10_000, 15_000, 20_000, 25_000, 30_000, 35_000, 40_000, 45_000, 50_000,
    ];
    let points = rule_scaling_experiment(&rule_counts, 10);

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.rules.to_string(),
                format!("{:.3}", p.avg_rtt.as_secs_f64() * 1000.0),
                format!("{:.3}", p.min_rtt.as_secs_f64() * 1000.0),
                format!("{:.3}", p.max_rtt.as_secs_f64() * 1000.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 6: round-trip time vs number of firewall rules to evaluate",
            &["rules", "avg RTT (ms)", "min (ms)", "max (ms)"],
            &rows
        )
    );
    println!("Paper: latency increases nearly linearly with the number of rules, reaching ~5 ms at 50 000 rules,");
    println!("because IPFW evaluates the rules linearly (no hierarchical or hashed evaluation).");

    let csv_points: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.rules as f64, p.avg_rtt.as_secs_f64() * 1000.0))
        .collect();
    write_results_file(
        "fig6_rule_scaling.csv",
        &points_to_csv("rules", "avg_rtt_ms", &csv_points),
    );
}
