//! Figure 11: number of clients having completed their download over time, for the large
//! scalability run of Figure 10.
//!
//! ```text
//! cargo run --release -p p2plab-bench --bin fig11_completion_curve [scale]
//! ```

use p2plab_bench::{arg_scale, write_results_file, write_run_report};
use p2plab_core::{ascii_plot, run_reported, series_to_csv, SwarmExperiment, SwarmWorkload};
use p2plab_sim::SimDuration;

fn main() {
    let scale = arg_scale(0.1, 0.002);
    let cfg = SwarmExperiment::paper_figure10(scale);
    println!(
        "Figure 11: completion curve of {} clients on {} machines",
        cfg.leechers, cfg.machines
    );
    let (result, report) =
        run_reported(&cfg.to_scenario(), SwarmWorkload::new(cfg.clone())).expect("scenario runs");
    write_run_report("", &report);
    println!("{}\n", result.summary());

    println!(
        "{}",
        ascii_plot(
            "clients having completed the download",
            &result.completion_curve,
            72,
            16
        )
    );
    println!("Paper: the curve stays near zero for a long time, then rises very steeply around ~1800-2000 s");
    println!("because most clients complete nearly simultaneously.");

    write_results_file(
        "fig11_completion_curve.csv",
        &series_to_csv(
            &[("completed_clients", &result.completion_curve)],
            SimDuration::from_secs(10),
            result.stopped_at,
        ),
    );
}
