//! Ablation: tit-for-tat choking vs no choking (every interested peer unchoked).
//!
//! ```text
//! cargo run --release -p p2plab-bench --bin ablation_choking [scale]
//! ```
//!
//! The paper motivates emulation by noting that BitTorrent's reciprocation machinery is too
//! complex to model faithfully. This ablation shows the machinery matters: removing choking
//! changes how upload capacity is partitioned (every interested peer competes for each uploader's
//! access link at once) and with it the per-client completion profile.

use p2plab_bench::{arg_scale, write_run_report};
use p2plab_bittorrent::no_choking;
use p2plab_core::{completion_summary, render_table, run_reported, SwarmExperiment, SwarmWorkload};

fn main() {
    let scale = arg_scale(0.25, 0.05);
    let mut base = SwarmExperiment::paper_figure8();
    base.leechers = ((base.leechers as f64 * scale).round() as usize).max(10);
    base.machines = base.leechers + base.seeders + 1;

    let mut with_choking = base.clone();
    with_choking.name = "tit-for-tat".into();
    let mut without_choking = base.clone();
    without_choking.name = "no-choking".into();
    without_choking.client_config.choke = no_choking();

    println!(
        "running {} clients with tit-for-tat choking...",
        base.leechers
    );
    let (a, report_a) = run_reported(
        &with_choking.to_scenario(),
        SwarmWorkload::new(with_choking.clone()),
    )
    .expect("scenario runs");
    write_run_report("", &report_a);
    println!("  {}", a.summary());
    println!("running {} clients with choking disabled...", base.leechers);
    let (b, report_b) = run_reported(
        &without_choking.to_scenario(),
        SwarmWorkload::new(without_choking.clone()),
    )
    .expect("scenario runs");
    write_run_report("", &report_b);
    println!("  {}\n", b.summary());

    let row = |r: &p2plab_core::SwarmResult| {
        let s = completion_summary(r);
        vec![
            r.name.clone(),
            format!("{}/{}", r.completed, r.leechers),
            s.map(|s| format!("{:.0}", s.first.as_secs_f64()))
                .unwrap_or_else(|| "-".into()),
            s.map(|s| format!("{:.0}", s.median.as_secs_f64()))
                .unwrap_or_else(|| "-".into()),
            s.map(|s| format!("{:.0}", s.last.as_secs_f64()))
                .unwrap_or_else(|| "-".into()),
            s.map(|s| format!("{:.0}", s.p5_p95_spread_secs))
                .unwrap_or_else(|| "-".into()),
            format!("{:.1}", r.seeder_upload_bytes as f64 / (1024.0 * 1024.0)),
            format!("{:.1}", r.leecher_upload_bytes as f64 / (1024.0 * 1024.0)),
        ]
    };
    println!(
        "{}",
        render_table(
            "Choking ablation",
            &[
                "policy",
                "completed",
                "first (s)",
                "median (s)",
                "last (s)",
                "p5-p95 (s)",
                "seeder up (MB)",
                "peer up (MB)"
            ],
            &[row(&a), row(&b)]
        )
    );
    println!(
        "Tit-for-tat concentrates each uploader's narrow 128 kbps uplink on a few peers at a time;"
    );
    println!("disabling it spreads the same capacity over every interested peer, changing the completion profile.");
}
