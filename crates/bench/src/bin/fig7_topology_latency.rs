//! Figure 7: the example locality topology, its per-machine rule accounting, and the latency
//! decomposition between 10.1.3.207 and 10.2.2.117 (the paper measures 853 ms).
//!
//! ```text
//! cargo run --release -p p2plab-bench --bin fig7_topology_latency
//! ```

use p2plab_core::{deploy, figure7_latency_experiment, render_table, DeploymentSpec};
use p2plab_net::{MachineId, NetworkConfig, TopologySpec};

fn main() {
    let machines = 100;
    let topo = TopologySpec::paper_figure7();
    let d = deploy(
        &topo,
        DeploymentSpec::new(machines),
        NetworkConfig::default(),
    )
    .expect("figure 7 deployment");
    println!(
        "Deployed the Figure 7 topology: {} virtual nodes in {} groups on {} machines ({:.1}:1)",
        d.vnodes.len(),
        topo.groups.len(),
        machines,
        d.folding_ratio()
    );
    println!(
        "largest per-machine rule list: {} rules\n",
        d.max_rules_per_machine()
    );

    let example = d.net.machine(MachineId(0));
    println!(
        "example machine '{}': {} aliases, {} IPFW rules (2 per hosted node + group latency rules)\n",
        example.name,
        example.iface.alias_count(),
        example.firewall.rule_count()
    );

    let lat = figure7_latency_experiment(machines, 20);
    let rows = vec![
        vec![
            "source access-link delay (10.1.3.0/24)".into(),
            format!("{}", lat.src_access),
            "20 ms".into(),
        ],
        vec![
            "group delay 10.1.0.0/16 -> 10.2.0.0/16".into(),
            format!("{}", lat.group),
            "400 ms".into(),
        ],
        vec![
            "destination access-link delay (10.2.0.0/16)".into(),
            format!("{}", lat.dst_access),
            "5 ms".into(),
        ],
        vec![
            "expected round trip (2x one-way)".into(),
            format!("{}", lat.expected_rtt),
            "850 ms".into(),
        ],
        vec![
            "measured round trip".into(),
            format!("{}", lat.measured_rtt),
            "853 ms".into(),
        ],
        vec![
            "overhead (serialization, cluster network, rules)".into(),
            format!("{}", lat.overhead()),
            "~3 ms".into(),
        ],
    ];
    println!(
        "{}",
        render_table(
            "Figure 7 check: latency decomposition, 10.1.3.207 <-> 10.2.2.117",
            &["component", "modelled", "paper"],
            &rows
        )
    );
}
