//! Ablation: pushing the folding ratio beyond the paper's 80:1 until the emulation's own
//! resources (the physical Gigabit NIC shared by the folded nodes) start to distort results.
//!
//! ```text
//! cargo run --release -p p2plab-bench --bin ablation_folding_limit [scale]
//! ```
//!
//! The paper notes that the first limiting factor of the folding experiment was the platform's
//! Gigabit network, which saturates when the emulated links get faster. Here the access links
//! are made 10x faster than the paper's DSL profile and the folding ratio is raised until the
//! aggregate demand exceeds one machine's NIC, so the deviation from the baseline becomes
//! visible — the boundary of the approach.

use p2plab_bench::{arg_scale, write_run_report};
use p2plab_core::{compare_folding, render_table, run_reported, SwarmExperiment, SwarmWorkload};
use p2plab_net::AccessLinkClass;
use p2plab_sim::SimDuration;

fn main() {
    let scale = arg_scale(0.25, 0.05);
    let mut base = SwarmExperiment::paper_figure8();
    base.leechers = ((base.leechers as f64 * scale).round() as usize).max(16);
    // 80 Mbps symmetric links: a few dozen folded nodes can demand several Gbps from one NIC.
    base.link = AccessLinkClass::symmetric(80_000_000, SimDuration::from_millis(15));
    base.file_bytes = 8 * 1024 * 1024;
    base.start_interval = SimDuration::from_secs(2);

    let total = base.leechers + base.seeders + 1;
    let ratios = [1usize, 10, 40, total];
    let mut results = Vec::new();
    for &per_machine in &ratios {
        let mut cfg = base.clone();
        cfg.machines = total.div_ceil(per_machine);
        cfg.name = format!("fast-links-{per_machine}-per-machine");
        println!("running {} ({} machines)...", cfg.name, cfg.machines);
        let (r, report) = run_reported(&cfg.to_scenario(), SwarmWorkload::new(cfg.clone()))
            .expect("scenario runs");
        write_run_report("", &report);
        println!(
            "  {} (peak NIC utilization {:.0}%)",
            r.summary(),
            100.0 * r.peak_nic_utilization
        );
        results.push(r);
    }

    let baseline = &results[0];
    let folded: Vec<&_> = results[1..].iter().collect();
    let cmp = compare_folding(baseline, &folded);
    let rows: Vec<Vec<String>> = cmp
        .rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}", r.folding_ratio),
                format!("{:.2}%", 100.0 * r.max_relative_deviation),
                r.median_completion
                    .map(|t| format!("{:.0}s", t.as_secs_f64()))
                    .unwrap_or_else(|| "-".into()),
                format!("{:.0}%", 100.0 * r.completion_fraction),
            ]
        })
        .collect();
    println!();
    println!(
        "{}",
        render_table(
            "Folding beyond the paper: fast emulated links vs the shared physical Gigabit NIC",
            &[
                "clients/machine",
                "max curve deviation",
                "median completion",
                "completed"
            ],
            &rows
        )
    );
    println!("With faster emulated links, extreme folding makes the shared physical NIC the bottleneck and");
    println!(
        "the curves drift from the baseline — exactly the limit the paper reports hitting first."
    );
}
