//! Time-to-full-dissemination of the gossip workload across arrival processes.
//!
//! ```text
//! cargo run --release -p p2plab-bench --bin gossip_arrivals [scale]
//! ```
//!
//! Runs the same epidemic broadcast (fanout 3, 1 s rounds) under the four arrival processes of
//! the scenario library — uniform ramp, Poisson, flash crowd and a replayed trace — and
//! compares how long the rumor takes to reach every node, measured from the first join. This is
//! the scenario-diversity counterpart of the paper's BitTorrent figures: one workload, one
//! topology, only the arrival dynamics change.

use p2plab_bench::{arg_scale, write_results_file, write_run_report};
use p2plab_core::{run_reported, ArrivalSpec, GossipSpec, GossipWorkload, ScenarioBuilder};
use p2plab_net::{AccessLinkClass, TopologySpec};
use p2plab_sim::SimDuration;

fn main() {
    let scale = arg_scale(1.0, 0.1);
    let nodes = ((96.0 * scale).round() as usize).max(12);
    let seed = 2006;

    // A bursty measured-looking trace: irregular gaps between 200 ms and 2 s, accumulated so
    // the offsets are non-decreasing as a real capture would be.
    let mut at_ms = 0u64;
    let trace: Vec<SimDuration> = (0..nodes)
        .map(|k| {
            at_ms += 200 + (k as u64 % 7) * 300;
            SimDuration::from_millis(at_ms)
        })
        .collect();
    let processes: Vec<(&str, ArrivalSpec)> = vec![
        (
            "uniform-ramp",
            ArrivalSpec::ramp(SimDuration::ZERO, SimDuration::from_secs(1)),
        ),
        ("poisson", ArrivalSpec::poisson(1.0)),
        (
            "flash-crowd",
            ArrivalSpec::flash_crowd(0.5, SimDuration::from_secs(45), 30.0),
        ),
        ("trace", ArrivalSpec::trace(trace)),
    ];

    println!("gossip dissemination vs arrival process ({nodes} nodes, fanout 3, seed {seed})\n");
    println!(
        "{:>14}  {:>10}  {:>12}  {:>12}  {:>10}  {:>10}",
        "arrivals", "first join", "full at", "spread time", "rumors", "duplicates"
    );

    let mut csv = String::from("arrivals,first_join_s,full_at_s,spread_s,rumors,duplicates\n");
    for (label, arrivals) in processes {
        let scenario = ScenarioBuilder::new(
            format!("gossip-{label}"),
            TopologySpec::uniform(
                "gossip",
                nodes,
                AccessLinkClass::symmetric(20_000_000, SimDuration::from_millis(10)),
            ),
        )
        .machines(8)
        .arrivals(arrivals)
        .deadline(SimDuration::from_secs(3600))
        .sample_interval(SimDuration::from_secs(1))
        .seed(seed)
        .build()
        .expect("scenario is valid");

        let (r, report) = run_reported(
            &scenario,
            GossipWorkload::new(GossipSpec::new(label, nodes)),
        )
        .expect("gossip runs");
        write_run_report("", &report);
        assert!(r.finished, "{}", r.summary());

        let origin = r.informed_at[0].expect("origin informed");
        let full = r.time_to_full.expect("fully informed");
        let spread = (full - origin).as_secs_f64();
        println!(
            "{:>14}  {:>9.1}s  {:>11.1}s  {:>11.1}s  {:>10}  {:>10}",
            label,
            origin.as_secs_f64(),
            full.as_secs_f64(),
            spread,
            r.rumors_sent,
            r.duplicate_receipts,
        );
        csv.push_str(&format!(
            "{label},{:.3},{:.3},{:.3},{},{}\n",
            origin.as_secs_f64(),
            full.as_secs_f64(),
            spread,
            r.rumors_sent,
            r.duplicate_receipts,
        ));
    }

    write_results_file("gossip_arrivals.csv", &csv);
}
