//! Figure 3: cumulative distribution of the execution times of 100 concurrent instances of a
//! ~5 s CPU-bound job, under the ULE, 4BSD and Linux 2.6 scheduler models.
//!
//! ```text
//! cargo run --release -p p2plab-bench --bin fig3_fairness_cdf
//! ```

use p2plab_bench::write_results_file;
use p2plab_core::{points_to_csv, render_table};
use p2plab_os::experiments::figure3_fairness;
use p2plab_os::SchedulerKind;

fn main() {
    let cdfs: Vec<(SchedulerKind, _)> = SchedulerKind::ALL
        .iter()
        .map(|&s| (s, figure3_fairness(s)))
        .collect();

    let quantiles = [0.05, 0.25, 0.5, 0.75, 0.95];
    let rows: Vec<Vec<String>> = cdfs
        .iter()
        .map(|(s, cdf)| {
            let mut row = vec![s.label().to_string()];
            row.extend(
                quantiles
                    .iter()
                    .map(|&q| format!("{:.1}", cdf.quantile(q).unwrap())),
            );
            row.push(format!(
                "{:.1}",
                cdf.quantile(0.95).unwrap() - cdf.quantile(0.05).unwrap()
            ));
            row
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 3: completion times of 100 concurrent 5 s jobs (seconds)",
            &[
                "scheduler",
                "p5",
                "p25",
                "median",
                "p75",
                "p95",
                "p5-p95 spread"
            ],
            &rows
        )
    );
    println!("Paper: 4BSD and Linux CDFs are nearly vertical (most processes finish together);");
    println!("the ULE scheduler shows noticeably larger variations (~210-290 s).");

    for (s, cdf) in &cdfs {
        write_results_file(
            &format!(
                "fig3_cdf_{}.csv",
                s.label().replace(' ', "_").to_lowercase()
            ),
            &points_to_csv("execution_time_s", "F", &cdf.points()),
        );
    }
}
