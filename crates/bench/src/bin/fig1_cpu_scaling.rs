//! Figure 1: average per-process execution time vs number of concurrent CPU-bound processes,
//! for the ULE, 4BSD and Linux 2.6 scheduler models.
//!
//! ```text
//! cargo run --release -p p2plab-bench --bin fig1_cpu_scaling
//! ```

use p2plab_bench::write_results_file;
use p2plab_core::{points_to_csv, render_table};
use p2plab_os::experiments::figure1_sweep;
use p2plab_os::SchedulerKind;

fn main() {
    let concurrencies = [
        1usize, 50, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000,
    ];
    let sweeps: Vec<(SchedulerKind, Vec<(usize, f64)>)> = SchedulerKind::ALL
        .iter()
        .map(|&s| (s, figure1_sweep(s, &concurrencies)))
        .collect();

    let rows: Vec<Vec<String>> = concurrencies
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let mut row = vec![n.to_string()];
            row.extend(sweeps.iter().map(|(_, sweep)| format!("{:.4}", sweep[i].1)));
            row
        })
        .collect();
    let headers: Vec<&str> = std::iter::once("processes")
        .chain(SchedulerKind::ALL.iter().map(|s| s.label()))
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 1: avg per-process execution time (s), CPU-bound job (1.65 s stand-alone)",
            &headers,
            &rows
        )
    );
    println!("Paper: flat around 1.65-1.69 s, slightly decreasing with concurrency, for all three schedulers.");

    for (sched, sweep) in &sweeps {
        let points: Vec<(f64, f64)> = sweep.iter().map(|&(n, v)| (n as f64, v)).collect();
        write_results_file(
            &format!(
                "fig1_{}.csv",
                sched.label().replace(' ', "_").to_lowercase()
            ),
            &points_to_csv("processes", "avg_exec_time_s", &points),
        );
    }
}
