//! Scenario/campaign runner: executes declarative `.toml` scenario files and parameter-grid
//! campaigns from the command line.
//!
//! ```text
//! cargo run --release -p p2plab-bench --bin campaign -- run examples/campaigns/ci_smoke.toml
//! cargo run --release -p p2plab-bench --bin campaign -- validate examples/scenarios/*.toml
//! ```
//!
//! Subcommands:
//!
//! * `validate <file>...` — parse and validate each file (scenario or campaign, detected by
//!   the presence of a `[campaign]` section), expanding campaign grids so every cell is
//!   checked, without running anything.
//! * `run <file> [--threads N] [--strict] [--cell <label>]` — run the file. A plain scenario
//!   writes one `RunReport` under `results/`; a campaign runs its grid across worker threads
//!   and writes one report per cell under `results/campaign/<name>/<cell>/` plus the
//!   cross-run `summary.csv` / `summary.json` aggregate. `--strict` additionally fails the
//!   process if any cell ends in an outcome other than `drained`. `--cell cell-03` re-runs a
//!   single grid cell (refreshing its per-cell report but leaving the full-grid summary
//!   untouched) — the fast loop when one cell of a large sweep needs another look.
//!
//! `--threads` composes with the scenarios' `shards` knob: each worker runs one cell at a
//! time, and a shard-native cell spawns `shards` event-loop threads of its own, so the OS
//! thread demand is their product. When that exceeds the machine's parallelism the runner
//! prints a warning and continues — results are deterministic regardless of scheduling, only
//! wall-clock speedup suffers.
//!
//! Exit codes: `0` success, `1` a run failed (or `--strict` outcome check), `2` usage, parse
//! or validation error.

use p2plab_bench::{write_results_file, write_run_report, write_run_report_in};
use p2plab_core::{
    default_threads, oversubscription_warning, parse_toml, render_table, run_campaign,
    CampaignSpec, CampaignSummary, ScenarioFile,
};
use std::process::ExitCode;

struct Args {
    command: String,
    files: Vec<String>,
    threads: Option<usize>,
    strict: bool,
    cell: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: campaign validate <file.toml>...\n       campaign run <file.toml> [--threads N] [--strict] [--cell <label>]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        return Err(usage());
    };
    let mut parsed = Args {
        command,
        files: Vec::new(),
        threads: None,
        strict: false,
        cell: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                let value = args.next().and_then(|v| v.parse::<usize>().ok());
                match value {
                    Some(n) if n > 0 => parsed.threads = Some(n),
                    _ => {
                        eprintln!("error: --threads expects a positive integer");
                        return Err(usage());
                    }
                }
            }
            "--strict" => parsed.strict = true,
            "--cell" => match args.next() {
                Some(label) => parsed.cell = Some(label),
                None => {
                    eprintln!("error: --cell expects a cell label (e.g. cell-03)");
                    return Err(usage());
                }
            },
            other if other.starts_with("--") => {
                eprintln!("error: unknown flag {other}");
                return Err(usage());
            }
            file => parsed.files.push(file.to_string()),
        }
    }
    if parsed.files.is_empty() {
        eprintln!("error: no scenario file given");
        return Err(usage());
    }
    Ok(parsed)
}

fn read_file(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("error: cannot read {path}: {e}");
        ExitCode::from(2)
    })
}

/// Parses + validates one file; prints what it found. Returns the expanded campaign (name,
/// threads, cells) when the file is a campaign, `None` for a plain scenario.
fn load(path: &str) -> Result<Option<(CampaignSpec, Vec<p2plab_core::CampaignCell>)>, ExitCode> {
    let text = read_file(path)?;
    let root = parse_toml(&text).map_err(|e| {
        eprintln!("error: {path}: {e}");
        ExitCode::from(2)
    })?;
    if CampaignSpec::is_campaign(&root) {
        let campaign = CampaignSpec::from_table(&root).map_err(|e| {
            eprintln!("error: {path}: {e}");
            ExitCode::from(2)
        })?;
        let cells = campaign.expand().map_err(|e| {
            eprintln!("error: {path}: {e}");
            ExitCode::from(2)
        })?;
        println!(
            "[{path}] campaign {:?}: {} cell(s) over {} matrix ax(es), all valid",
            campaign.name,
            cells.len(),
            campaign.axes.len()
        );
        Ok(Some((campaign, cells)))
    } else {
        let file = ScenarioFile::from_table(&root).map_err(|e| {
            eprintln!("error: {path}: {e}");
            ExitCode::from(2)
        })?;
        file.validate().map_err(|e| {
            eprintln!("error: {path}: invalid scenario: {e}");
            ExitCode::from(2)
        })?;
        println!(
            "[{path}] scenario {:?}: workload {}, {} vnode(s) on {} machine(s), valid",
            file.spec.name,
            file.workload.kind(),
            file.spec.topology.total_nodes(),
            file.spec.deployment.machines
        );
        Ok(None)
    }
}

fn run_one(path: &str, args: &Args) -> Result<(), ExitCode> {
    match load(path)? {
        None => {
            if args.cell.is_some() {
                eprintln!("error: {path}: --cell only applies to campaign files");
                return Err(ExitCode::from(2));
            }
            // Plain scenario: one run, one report under results/.
            let text = read_file(path)?;
            let file = ScenarioFile::parse(&text).expect("validated above");
            let report = file.workload.run_reported(&file.spec).map_err(|e| {
                eprintln!("error: {path}: run failed: {e}");
                ExitCode::from(1)
            })?;
            if args.strict && report.outcome != p2plab_sim::RunOutcome::Drained {
                eprintln!(
                    "error: {path}: strict mode: outcome was not drained ({:?})",
                    report.outcome
                );
                return Err(ExitCode::from(1));
            }
            print!(
                "{}",
                render_table(
                    &format!("scenario {:?}", report.scenario),
                    &["workload", "outcome", "stopped_at", "events", "vnodes"],
                    &[vec![
                        report.workload.clone(),
                        format!("{:?}", report.outcome),
                        format!("{:.1}s", report.stopped_at.as_secs_f64()),
                        format!("{}", report.events_executed),
                        format!("{}", report.vnodes),
                    ]],
                )
            );
            write_run_report("", &report);
            Ok(())
        }
        Some((campaign, cells)) => {
            // --cell: re-run just the named grid cell, refreshing its per-cell report without
            // touching the full-grid summary artifacts.
            let cells = match &args.cell {
                None => cells,
                Some(label) => {
                    let selected: Vec<p2plab_core::CampaignCell> = cells
                        .iter()
                        .filter(|c| &c.label == label)
                        .cloned()
                        .collect();
                    if selected.is_empty() {
                        let labels: Vec<&str> = cells.iter().map(|c| c.label.as_str()).collect();
                        eprintln!(
                            "error: {path}: no cell labeled {label:?} (cells: {})",
                            labels.join(", ")
                        );
                        return Err(ExitCode::from(2));
                    }
                    selected
                }
            };
            let threads = args
                .threads
                .or(campaign.threads)
                .unwrap_or_else(default_threads);
            println!(
                "[{path}] running {} cell(s) on {} thread(s)",
                cells.len(),
                threads
            );
            // Worker threads and per-cell event-loop shards multiply; warn (results are
            // unaffected — determinism never depends on scheduling) instead of erroring.
            if let Some(warning) = oversubscription_warning(&cells, threads) {
                eprintln!("warning: {path}: {warning}");
            }
            let results = run_campaign(&cells, threads);
            let mut reports = Vec::with_capacity(cells.len());
            let mut failed = false;
            for (cell, result) in cells.iter().zip(results) {
                match result {
                    Ok(report) => {
                        write_run_report_in(
                            &format!("campaign/{}/{}", campaign.name, cell.label),
                            "",
                            &report,
                        );
                        reports.push(report);
                    }
                    Err(e) => {
                        eprintln!("error: {path}: {}: run failed: {e}", cell.label);
                        failed = true;
                    }
                }
            }
            if failed {
                return Err(ExitCode::from(1));
            }
            let summary = CampaignSummary::new(&campaign.name, &cells, &reports);
            let rows: Vec<Vec<String>> = summary
                .rows
                .iter()
                .map(|r| {
                    vec![
                        r.label.clone(),
                        r.overrides
                            .iter()
                            .map(|(k, v)| format!("{k}={v}"))
                            .collect::<Vec<_>>()
                            .join(" "),
                        r.workload.clone(),
                        r.outcome.clone(),
                        format!("{}", r.events_executed),
                        format!("{:.4}", r.final_progress),
                        format!("{:.4}", r.progress_dev_vs_first),
                    ]
                })
                .collect();
            print!(
                "{}",
                render_table(
                    &format!("campaign {:?}", campaign.name),
                    &[
                        "cell",
                        "overrides",
                        "workload",
                        "outcome",
                        "events",
                        "progress",
                        "dev-vs-first",
                    ],
                    &rows,
                )
            );
            if args.cell.is_none() {
                write_results_file(
                    &format!("campaign/{}/summary.csv", campaign.name),
                    &summary.to_csv(),
                );
                write_results_file(
                    &format!("campaign/{}/summary.json", campaign.name),
                    &summary.to_json(),
                );
            } else {
                println!(
                    "(--cell run: per-cell report refreshed, full-grid summary left untouched)"
                );
            }
            if args.strict {
                let undrained: Vec<&str> = summary
                    .rows
                    .iter()
                    .filter(|r| r.outcome != "drained")
                    .map(|r| r.label.as_str())
                    .collect();
                if !undrained.is_empty() {
                    eprintln!(
                        "error: {path}: strict mode: cell(s) did not drain: {}",
                        undrained.join(", ")
                    );
                    return Err(ExitCode::from(1));
                }
            }
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    match args.command.as_str() {
        "validate" => {
            for path in &args.files {
                if let Err(code) = load(path) {
                    return code;
                }
            }
            println!("all {} file(s) valid", args.files.len());
            ExitCode::SUCCESS
        }
        "run" => {
            if args.files.len() != 1 {
                eprintln!("error: `run` expects exactly one file");
                return usage();
            }
            match run_one(&args.files[0], &args) {
                Ok(()) => ExitCode::SUCCESS,
                Err(code) => code,
            }
        }
        other => {
            eprintln!("error: unknown command {other:?}");
            usage()
        }
    }
}
