//! The in-text overhead table: duration of a local TCP connect/disconnect cycle with and
//! without the P2PLab libc interception (paper: 10.22 µs vs 10.79 µs).
//!
//! ```text
//! cargo run --release -p p2plab-bench --bin tbl_intercept_overhead
//! ```

use p2plab_core::{interception_overhead, render_table};
use p2plab_net::InterceptConfig;
use p2plab_os::SyscallCostModel;

fn main() {
    let o = interception_overhead();
    let rows = vec![
        vec![
            "unmodified libc".to_string(),
            format!("{:.2}", o.plain.as_nanos() as f64 / 1000.0),
            "10.22".to_string(),
        ],
        vec![
            "modified libc (BINDIP interception)".to_string(),
            format!("{:.2}", o.intercepted.as_nanos() as f64 / 1000.0),
            "10.79".to_string(),
        ],
    ];
    println!(
        "{}",
        render_table(
            "libc interception overhead: connect/disconnect cycle duration",
            &["configuration", "modelled (us)", "paper (us)"],
            &rows
        )
    );
    println!(
        "relative overhead: {:.1}% (one extra bind() system call per connect())",
        100.0 * o.relative()
    );

    // Show the exact syscall sequences the shim produces.
    let model = SyscallCostModel::freebsd_opteron();
    for (label, cfg) in [
        ("without interception", InterceptConfig::disabled()),
        ("with interception", InterceptConfig::enabled()),
    ] {
        println!(
            "\nconnect() sequence {label}: {:?} (total {})",
            cfg.connect_syscalls(),
            cfg.connect_cost(&model)
        );
    }
}
