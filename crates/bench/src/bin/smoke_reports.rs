//! CI smoke check of the run-report pipeline: one small scenario per workload, each writing
//! its `RunReport` JSON under `results/` and re-loading it through the parser.
//!
//! ```text
//! cargo run --release -p p2plab-bench --bin smoke_reports
//! ```
//!
//! Exits non-zero (panics) on any schema or round-trip drift: a report that serializes but no
//! longer parses back identically means the JSON writer and loader have diverged and every
//! artifact the bench bins leave behind is unreadable.

use p2plab_bench::write_run_report;
use p2plab_core::{
    run_reported, DhtLookupSpec, DhtLookupWorkload, GossipSpec, GossipWorkload, PingMeshSpec,
    PingMeshWorkload, RunReport, ScenarioBuilder, SwarmExperiment, SwarmWorkload,
};
use p2plab_net::{AccessLinkClass, TopologySpec};
use p2plab_sim::SimDuration;

fn check(name: &str, report: &RunReport) {
    let path = write_run_report("smoke", report);
    let text = std::fs::read_to_string(&path).expect("report file readable");
    let loaded = RunReport::from_json(&text).expect("report JSON parses back");
    assert_eq!(
        &loaded, report,
        "{name}: report drifted through the JSON round-trip"
    );
    assert!(
        !report.metrics.is_empty(),
        "{name}: run recorded no metrics"
    );
    assert!(
        report.metrics.series("progress").is_some(),
        "{name}: run has no progress curve"
    );
    println!(
        "[ok] {name}: {} metrics, {} events executed ({:.0} events/sec wall), wrote {}",
        report.metrics.len(),
        report.events_executed,
        report.events_per_sec,
        path.display()
    );
}

fn main() {
    // Swarm: the quick preset, shrunk further for smoke speed.
    let mut cfg = SwarmExperiment::quick();
    cfg.name = "smoke-swarm".into();
    cfg.leechers = 6;
    let (result, report) =
        run_reported(&cfg.to_scenario(), SwarmWorkload::new(cfg.clone())).expect("swarm runs");
    assert!(result.finished, "{}", result.summary());
    assert_eq!(
        report
            .metrics
            .histogram("completion_time_secs")
            .unwrap()
            .count,
        cfg.leechers as u64
    );
    check("swarm", &report);

    // Ping mesh: a small full mesh.
    let mesh = PingMeshSpec::full("smoke-ping-mesh", 4);
    let spec = ScenarioBuilder::new(
        "smoke-ping-mesh",
        TopologySpec::uniform(
            "smoke-ping-mesh",
            4,
            AccessLinkClass::symmetric(50_000_000, SimDuration::from_millis(2)),
        ),
    )
    .machines(2)
    .arrival_ramp(mesh.arrival_ramp())
    .deadline(SimDuration::from_secs(60))
    .sample_interval(SimDuration::from_secs(1))
    .seed(1)
    .build()
    .expect("valid scenario");
    let expected = mesh.expected_probes() as u64;
    let (result, report) = run_reported(&spec, PingMeshWorkload::new(mesh)).expect("mesh runs");
    assert!(result.finished, "{}", result.summary());
    assert_eq!(
        report.metrics.histogram("rtt_secs").unwrap().count,
        expected
    );
    check("ping-mesh", &report);

    // Gossip: a small epidemic broadcast.
    let spec = ScenarioBuilder::new(
        "smoke-gossip",
        TopologySpec::uniform(
            "smoke-gossip",
            12,
            AccessLinkClass::symmetric(50_000_000, SimDuration::from_millis(2)),
        ),
    )
    .machines(3)
    .deadline(SimDuration::from_secs(600))
    .sample_interval(SimDuration::from_secs(1))
    .seed(2)
    .build()
    .expect("valid scenario");
    let (result, report) = run_reported(&spec, GossipWorkload::new(GossipSpec::new("smoke", 12)))
        .expect("gossip runs");
    assert!(result.finished, "{}", result.summary());
    assert!(report.metrics.counter("rumors_sent").unwrap() > 0);
    check("gossip", &report);

    // DHT lookups: a small overlay, every lookup must converge and fill the hop histogram.
    let dht = DhtLookupSpec::new("smoke-dht", 24);
    let spec = ScenarioBuilder::new(
        "smoke-dht",
        TopologySpec::uniform(
            "smoke-dht",
            24,
            AccessLinkClass::symmetric(50_000_000, SimDuration::from_millis(2)),
        ),
    )
    .machines(3)
    .arrival_ramp(dht.arrival_ramp())
    .deadline(dht.arrival_ramp() + SimDuration::from_secs(120))
    .sample_interval(SimDuration::from_secs(1))
    .seed(3)
    .build()
    .expect("valid scenario");
    let (result, report) = run_reported(&spec, DhtLookupWorkload::new(dht)).expect("dht runs");
    assert!(result.finished, "{}", result.summary());
    assert_eq!(
        result.found_closest,
        result.completed,
        "{}",
        result.summary()
    );
    assert_eq!(report.metrics.histogram("lookup_hops").unwrap().count, 24);
    assert!(report.metrics.counter("rpc_calls").unwrap() > 0);
    check("dht-lookup", &report);

    println!("all run reports round-tripped cleanly");
}
