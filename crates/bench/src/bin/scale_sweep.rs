//! The standing scale/performance baseline: swarm, ping-mesh and gossip scenarios at
//! 10^3–10^5 virtual nodes — plus the protocol-depth A/B (`figure10-proto-*`: the fig10 swarm
//! under burst loss with fragmentation active, legacy vs AIMD congestion control) and the
//! shard axis (the 50k sharded-gossip configuration on 1 vs 2 event-loop threads, the fig10
//! pin at `shards` 1/2/4, and — full sweep only — a 10^6-vnode sharded gossip on 4 threads) —
//! each emitting its `RunReport` under `results/` and summarized as `results/scale_sweep.csv`
//! (which carries a `shards` column).
//!
//! ```text
//! # full sweep (1k/10k/50k gossip, 1k/10k mesh and swarm, fig10 throughput pin):
//! cargo run --release -p p2plab-bench --bin scale_sweep
//! # CI smoke: same scenarios under per-scenario event budgets and a global wall-clock cap,
//! # exits non-zero if a scenario exhausts its budget or the cap is blown (a queue or
//! # livelock regression fails CI instead of hanging it):
//! cargo run --release -p p2plab-bench --bin scale_sweep -- --smoke
//! ```
//!
//! The fig10-configuration run doubles as the **throughput pin**: when the pre-refactor
//! baseline report (`results/scale_sweep/fig10-1439-clients.baseline.report.json`, schema v1)
//! is present, the sweep prints the events/sec speedup against it. Perf-relevant changes are
//! expected to include a before/after `scale_sweep` report in the PR.

use p2plab_bench::{write_results_file, write_run_report};
use p2plab_core::{
    render_table, run_reported, ArrivalSpec, DhtLookupSpec, DhtLookupWorkload, GossipShardedSpec,
    GossipShardedWorkload, GossipSpec, GossipWorkload, PingMeshSpec, PingMeshWorkload, RunReport,
    ScenarioBuilder, SwarmExperiment, SwarmWorkload,
};
use p2plab_net::{AccessLinkClass, BurstLoss, CcKind, LinkCondition, TopologySpec};
use p2plab_sim::{RunOutcome, SimDuration};
use std::time::Instant;

/// Global wall-clock cap for the smoke sweep. CI fails rather than hangs.
const SMOKE_WALL_CAP_SECS: u64 = 1200;

struct SweepRow {
    scenario: String,
    workload: &'static str,
    vnodes: usize,
    shards: usize,
    events: u64,
    wall_secs: f64,
    events_per_sec: f64,
    outcome: RunOutcome,
}

fn record(
    rows: &mut Vec<SweepRow>,
    workload: &'static str,
    vnodes: usize,
    shards: usize,
    report: &RunReport,
) {
    write_run_report("scale", report);
    println!(
        "[{}] {}: {} events in {:.1}s = {:.0} events/sec on {} shard(s) ({:?})",
        workload,
        report.scenario,
        report.events_executed,
        report.wall_secs,
        report.events_per_sec,
        shards,
        report.outcome
    );
    rows.push(SweepRow {
        scenario: report.scenario.clone(),
        workload,
        vnodes,
        shards,
        events: report.events_executed,
        wall_secs: report.wall_secs,
        events_per_sec: report.events_per_sec,
        outcome: report.outcome,
    });
}

/// Gossip at `nodes` vnodes: a 2 ms join ramp, then epidemic broadcast to completion.
fn gossip(nodes: usize, smoke: bool) -> RunReport {
    let name = format!("scale-gossip-{nodes}");
    let machines = (nodes / 64).max(1);
    let mut spec = GossipSpec::new(&name, nodes);
    // Push less per round at scale: dissemination still completes, with fewer duplicate
    // rumors clogging the sweep.
    spec.fanout = 2;
    let ramp = SimDuration::from_millis(2) * nodes.saturating_sub(1) as u64;
    let mut b = ScenarioBuilder::new(
        &name,
        TopologySpec::uniform(
            &name,
            nodes,
            AccessLinkClass::symmetric(50_000_000, SimDuration::from_millis(5)),
        ),
    )
    .machines(machines)
    .arrivals(ArrivalSpec::ramp(
        SimDuration::ZERO,
        SimDuration::from_millis(2),
    ))
    .arrival_ramp(ramp)
    .deadline(ramp + SimDuration::from_secs(900))
    .sample_interval(SimDuration::from_secs(10))
    .monitor_resources(false)
    .seed(2006);
    if smoke {
        b = b.event_budget(150_000_000);
    }
    let scenario = b.build().expect("valid gossip scenario");
    let (result, report) = run_reported(&scenario, GossipWorkload::new(spec)).expect("gossip runs");
    assert!(
        result.finished,
        "gossip at {nodes} vnodes did not fully disseminate: {}",
        result.summary()
    );
    report
}

/// Sharded gossip at `nodes` vnodes across `shards` event-loop threads: the shard-native
/// epidemic broadcast over the conservative-lookahead runtime. The same configuration is run
/// at several shard counts — event counts must match exactly (the runtime is
/// partition-invariant), while events/sec is the standing multi-core scaling evidence.
fn gossip_sharded(nodes: usize, shards: usize, smoke: bool) -> RunReport {
    let name = format!("scale-gossip-sharded-{nodes}x{shards}");
    let machines = (nodes / 64).max(1);
    let mut spec = GossipShardedSpec::new(&name, nodes);
    spec.fanout = 2;
    // Tighter arrival spacing at the million-node scale: a 2 ms ramp would stretch the join
    // phase to half an hour of virtual time and drown the dissemination in offline pushes.
    let spacing = if nodes >= 1_000_000 {
        SimDuration::from_micros(10)
    } else {
        SimDuration::from_millis(2)
    };
    let ramp = spacing * nodes.saturating_sub(1) as u64;
    let mut b = ScenarioBuilder::new(
        &name,
        TopologySpec::uniform(
            &name,
            nodes,
            AccessLinkClass::symmetric(50_000_000, SimDuration::from_millis(5)),
        ),
    )
    .machines(machines)
    .arrivals(ArrivalSpec::ramp(SimDuration::ZERO, spacing))
    .arrival_ramp(ramp)
    .deadline(ramp + SimDuration::from_secs(900))
    .sample_interval(SimDuration::from_secs(10))
    .monitor_resources(false)
    .seed(2006)
    .shards(shards);
    if smoke {
        b = b.event_budget(150_000_000);
    }
    let scenario = b.build().expect("valid sharded gossip scenario");
    let (result, report) =
        run_reported(&scenario, GossipShardedWorkload::new(spec)).expect("sharded gossip runs");
    assert!(
        result.time_to_full.is_some(),
        "sharded gossip at {nodes} vnodes x {shards} shard(s) did not fully disseminate \
         ({} informed)",
        result.informed
    );
    report
}

/// Ping mesh (ring pattern) at `nodes` vnodes.
fn ping_mesh(nodes: usize, smoke: bool) -> RunReport {
    let name = format!("scale-mesh-{nodes}");
    let machines = (nodes / 64).max(1);
    let mesh = PingMeshSpec::ring(&name, nodes);
    let mut b = ScenarioBuilder::new(
        &name,
        TopologySpec::uniform(
            &name,
            nodes,
            AccessLinkClass::symmetric(50_000_000, SimDuration::from_millis(5)),
        ),
    )
    .machines(machines)
    .arrival_ramp(mesh.arrival_ramp())
    .deadline(mesh.arrival_ramp() + SimDuration::from_secs(120))
    .sample_interval(SimDuration::from_secs(10))
    .monitor_resources(false)
    .seed(2006);
    if smoke {
        b = b.event_budget(20_000_000);
    }
    let scenario = b.build().expect("valid mesh scenario");
    let (result, report) = run_reported(&scenario, PingMeshWorkload::new(mesh)).expect("mesh runs");
    assert!(
        result.finished,
        "ping mesh at {nodes} vnodes incomplete: {}",
        result.summary()
    );
    report
}

/// DHT lookups at `nodes` vnodes: one Kademlia-style iterative lookup per node, over the typed
/// RPC layer (the session/lane API's hot path at scale).
fn dht(nodes: usize, smoke: bool) -> RunReport {
    let name = format!("scale-dht-{nodes}");
    let machines = (nodes / 64).max(1);
    let spec = DhtLookupSpec::new(&name, nodes);
    let ramp = spec.arrival_ramp();
    let mut b = ScenarioBuilder::new(
        &name,
        TopologySpec::uniform(
            &name,
            nodes,
            AccessLinkClass::symmetric(50_000_000, SimDuration::from_millis(5)),
        ),
    )
    .machines(machines)
    .arrival_ramp(ramp)
    .deadline(ramp + SimDuration::from_secs(300))
    .sample_interval(SimDuration::from_secs(10))
    .monitor_resources(false)
    .seed(2006);
    if smoke {
        b = b.event_budget(50_000_000);
    }
    let scenario = b.build().expect("valid dht scenario");
    let (result, report) = run_reported(&scenario, DhtLookupWorkload::new(spec)).expect("dht runs");
    assert!(
        result.finished,
        "dht at {nodes} vnodes incomplete: {}",
        result.summary()
    );
    assert_eq!(
        result.found_closest,
        result.completed,
        "loss-free iterative lookups must all converge: {}",
        result.summary()
    );
    report
}

/// BitTorrent swarm with `clients` downloaders sharing a 1 MiB file (small on purpose: the
/// sweep measures the emulation hot path at client scale, not BitTorrent's long tail).
fn swarm(clients: usize, smoke: bool) -> RunReport {
    let name = format!("scale-swarm-{clients}");
    let mut cfg = SwarmExperiment::paper_figure10(1.0);
    cfg.name = name.clone();
    cfg.leechers = clients;
    cfg.seeders = (clients / 200).max(4);
    cfg.machines = ((clients + cfg.seeders + 1) as f64 / 32.0).ceil() as usize;
    cfg.file_bytes = 1024 * 1024;
    cfg.start_interval = SimDuration::from_millis(50);
    cfg.deadline = SimDuration::from_secs(1500);
    let mut scenario = cfg.to_scenario();
    if smoke {
        scenario.event_budget = Some(100_000_000);
    }
    let (result, report) = run_reported(&scenario, SwarmWorkload::new(cfg)).expect("swarm runs");
    // At 10^4 clients a handful of late joiners can stay starved of unchoke slots past the
    // deadline — protocol tail behaviour, not an emulation failure. The sweep demands
    // near-total completion; anything below that points at a real regression.
    let fraction = result.completed as f64 / clients as f64;
    assert!(
        fraction >= 0.995,
        "swarm with {clients} clients only {:.2}% complete: {}",
        fraction * 100.0,
        result.summary()
    );
    report
}

/// The fig10 throughput pin: the paper's Figure 10 swarm at quarter scale (1439 clients,
/// 16 MiB file) — the configuration whose events/sec is compared against the committed
/// pre-refactor baseline report.
fn fig10_pin(smoke: bool, shards: usize) -> RunReport {
    let cfg = SwarmExperiment::paper_figure10(0.25);
    let mut scenario = cfg.to_scenario();
    scenario.shards = shards;
    if smoke {
        scenario.event_budget = Some(120_000_000);
    }
    let (result, report) = run_reported(&scenario, SwarmWorkload::new(cfg)).expect("fig10 runs");
    assert!(
        result.finished,
        "fig10 pin did not finish: {}",
        result.summary()
    );
    report
}

/// The protocol-depth A/B on the fig10 configuration: the same swarm at 1/50 scale with the
/// transport layer active (1500-byte MTU fragmentation, ack bitfields) over burst-conditioned
/// access links, run once per congestion controller. Rides next to the untouched fig10 pin in
/// the same sweep — proof that the legacy wire path the pin depends on and the protocol-depth
/// path coexist, and a standing record of what each controller costs under burst loss.
fn fig10_proto(kind: CcKind, smoke: bool) -> RunReport {
    let mut cfg = SwarmExperiment::paper_figure10(0.02);
    cfg.name = format!("figure10-proto-{}", kind.name());
    // A 2 MiB file keeps the A/B affordable: AIMD reads the Gilbert–Elliott bursts as
    // congestion and throttles to a small window, so full-size fig10 transfers would dominate
    // the sweep's wall time without changing the comparison.
    cfg.file_bytes = 2 * 1024 * 1024;
    cfg.deadline = SimDuration::from_secs(20_000);
    cfg.link = cfg.link.with_condition(Some(
        LinkCondition::none().with_burst(BurstLoss::new(0.02, 0.25, 0.9)),
    ));
    let mut scenario = cfg.to_scenario();
    scenario.network.transport.mtu = Some(1500);
    scenario.network.transport.congestion = kind;
    if smoke {
        scenario.event_budget = Some(120_000_000);
    }
    let leechers = cfg.leechers;
    let (result, report) = run_reported(&scenario, SwarmWorkload::new(cfg)).expect("proto runs");
    let fraction = result.completed as f64 / leechers as f64;
    assert!(
        fraction >= 0.99,
        "fig10-proto-{} swarm only {:.2}% complete: {}",
        kind.name(),
        fraction * 100.0,
        result.summary()
    );
    report
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sweep_start = Instant::now(); // lint:allow(wall-clock) — the sweep's wall cap is real time by definition
    let mut rows: Vec<SweepRow> = Vec::new();

    for nodes in [1_000, 10_000] {
        let report = ping_mesh(nodes, smoke);
        record(&mut rows, "ping-mesh", nodes, 1, &report);
    }
    for nodes in [1_000, 10_000, 50_000] {
        let report = gossip(nodes, smoke);
        record(&mut rows, "gossip", nodes, 1, &report);
    }
    // The shard axis: the same 50k-vnode sharded-gossip configuration on 1 vs 2 event-loop
    // threads. Event counts must agree exactly (partition invariance); the events/sec pair is
    // the standing multi-core scaling evidence.
    let mut sharded_pair = Vec::new();
    for shards in [1usize, 2] {
        let report = gossip_sharded(50_000, shards, smoke);
        record(&mut rows, "gossip-sharded", 50_000, shards, &report);
        sharded_pair.push(report);
    }
    assert_eq!(
        sharded_pair[0].events_executed, sharded_pair[1].events_executed,
        "sharded gossip event count depends on the shard count — partition invariance broke"
    );
    println!(
        "sharded gossip 50k: {:.0} events/s at 1 shard vs {:.0} events/s at 2 shards = {:.2}x",
        sharded_pair[0].events_per_sec,
        sharded_pair[1].events_per_sec,
        sharded_pair[1].events_per_sec / sharded_pair[0].events_per_sec.max(1e-9)
    );
    // The million-vnode demonstrator is full-sweep only: it clears the smoke budget with room
    // to spare, but its wall time has no place in a CI gate.
    if !smoke {
        let report = gossip_sharded(1_000_000, 4, smoke);
        record(&mut rows, "gossip-sharded", 1_000_000, 4, &report);
    }
    for nodes in [1_000, 10_000] {
        let report = dht(nodes, smoke);
        record(&mut rows, "dht-lookup", nodes, 1, &report);
    }
    for clients in [1_000, 10_000] {
        let report = swarm(clients, smoke);
        record(&mut rows, "swarm", clients, 1, &report);
    }
    let fig10 = fig10_pin(smoke, 1);
    record(&mut rows, "swarm", fig10.vnodes, 1, &fig10);
    // Shard-count invariance on the pin itself: the legacy swarm path accepts the `shards`
    // knob (running the reference engine regardless), so the report must be byte-identical —
    // wall-clock fields aside — at every value.
    let canonical = |report: &RunReport| {
        let mut r = report.clone();
        r.wall_secs = 0.0;
        r.events_per_sec = 0.0;
        r.to_json()
    };
    for shards in [2usize, 4] {
        let again = fig10_pin(smoke, shards);
        record(&mut rows, "swarm", again.vnodes, shards, &again);
        assert_eq!(
            canonical(&fig10),
            canonical(&again),
            "fig10 pin diverged between shards=1 and shards={shards}"
        );
    }
    for kind in [CcKind::Legacy, CcKind::Aimd] {
        let report = fig10_proto(kind, smoke);
        record(&mut rows, "swarm-proto", report.vnodes, 1, &report);
    }

    // Summary table + CSV artifact.
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                r.workload.to_string(),
                r.vnodes.to_string(),
                r.shards.to_string(),
                r.events.to_string(),
                format!("{:.1}", r.wall_secs),
                format!("{:.0}", r.events_per_sec),
            ]
        })
        .collect();
    println!(
        "\n{}",
        render_table(
            "Scale sweep",
            &["scenario", "workload", "vnodes", "shards", "events", "wall_s", "events/s"],
            &table_rows,
        )
    );
    let mut csv = String::from("scenario,workload,vnodes,shards,events,wall_secs,events_per_sec\n");
    for r in &rows {
        csv.push_str(&format!(
            "{},{},{},{},{},{:.3},{:.0}\n",
            r.scenario, r.workload, r.vnodes, r.shards, r.events, r.wall_secs, r.events_per_sec
        ));
    }
    write_results_file("scale_sweep.csv", &csv);

    // Throughput pin against the committed pre-refactor baseline, when present.
    let baseline_path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/scale_sweep/fig10-1439-clients.baseline.report.json");
    match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match RunReport::from_json(&text) {
            Ok(baseline) => {
                let speedup = fig10.events_per_sec / baseline.events_per_sec.max(1e-9);
                println!(
                    "fig10 throughput pin: {:.0} events/s vs pre-refactor baseline {:.0} events/s = {speedup:.2}x",
                    fig10.events_per_sec, baseline.events_per_sec
                );
                assert_eq!(
                    baseline.events_executed, fig10.events_executed,
                    "fig10 event count drifted from the baseline — the runs are no longer \
                     comparable (determinism regression?)"
                );
            }
            Err(e) => println!("[warn] baseline report unreadable: {e}"),
        },
        Err(_) => println!(
            "[note] no baseline report at {}; skipping the throughput comparison",
            baseline_path.display()
        ),
    }

    // Smoke-mode gate: every scenario must have completed within its event budget, and the
    // whole sweep under the wall cap.
    let wall = sweep_start.elapsed().as_secs();
    println!("sweep wall time: {wall}s");
    if smoke {
        let exhausted: Vec<&str> = rows
            .iter()
            .filter(|r| r.outcome == RunOutcome::EventBudgetExhausted)
            .map(|r| r.scenario.as_str())
            .collect();
        assert!(
            exhausted.is_empty(),
            "scenarios exhausted their event budget: {exhausted:?}"
        );
        assert!(
            wall < SMOKE_WALL_CAP_SECS,
            "smoke sweep took {wall}s (cap {SMOKE_WALL_CAP_SECS}s) — hot-path regression?"
        );
    }
    println!("scale sweep complete: {} scenarios", rows.len());
}
