//! Figure 8: evolution of the download of 160 BitTorrent clients (16 MB file, 4 seeders,
//! DSL-like links, clients started every 10 s, one client per physical node).
//!
//! ```text
//! cargo run --release -p p2plab-bench --bin fig8_swarm_progress [scale]
//! ```
//!
//! The optional `scale` argument (0..1] shrinks the number of clients proportionally; the
//! default reproduces the paper's 160 clients.

use p2plab_bench::{arg_scale, write_results_file, write_run_report};
use p2plab_core::{
    ascii_plot, completion_summary, download_phases, run_reported, series_to_csv, SwarmExperiment,
    SwarmWorkload,
};
use p2plab_sim::SimDuration;

fn main() {
    let scale = arg_scale(1.0, 0.05);
    let mut cfg = SwarmExperiment::paper_figure8();
    if scale < 1.0 {
        cfg.leechers = ((cfg.leechers as f64 * scale).round() as usize).max(8);
        cfg.machines = cfg.leechers + cfg.seeders + 1;
        cfg.name = format!("figure8-{}-clients", cfg.leechers);
    }
    println!(
        "Figure 8: {} clients + {} seeders, 16 MB file, DSL 2 Mbps/128 kbps/30 ms, start interval {}",
        cfg.leechers, cfg.seeders, cfg.start_interval
    );
    let (result, report) =
        run_reported(&cfg.to_scenario(), SwarmWorkload::new(cfg.clone())).expect("scenario runs");
    write_run_report("", &report);
    println!("{}\n", result.summary());

    if let Some(s) = completion_summary(&result) {
        println!(
            "completions: first {} / median {} / last {}",
            s.first, s.median, s.last
        );
    }
    if let Some(p) = download_phases(&result) {
        println!("download phases (as read off the curves):");
        println!(
            "  1. seeders-only uploading until about {}",
            p.seeder_only_until
        );
        println!(
            "  2. downloaders contributing to each other until {}",
            p.first_completion
        );
        println!(
            "  3. finished clients seeding the rest until {}",
            p.last_completion
        );
    }

    // The figure plots every client's progress; print a sample of clients and write all curves
    // to CSV for plotting.
    println!("\nSelected clients (percent done at 500 s / 1000 s / 1500 s, completion time):");
    let step = (result.progress.len() / 10).max(1);
    for (i, p) in result.progress.iter().enumerate().step_by(step) {
        println!(
            "  client {:3}: {:5.1}% {:6.1}% {:6.1}%   done at {}",
            i,
            p.value_at(p2plab_sim::SimTime::from_secs(500), 0.0),
            p.value_at(p2plab_sim::SimTime::from_secs(1000), 0.0),
            p.value_at(p2plab_sim::SimTime::from_secs(1500), 0.0),
            p.time_to_reach(100.0)
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into())
        );
    }

    let names: Vec<String> = (0..result.progress.len())
        .map(|i| format!("client{i}"))
        .collect();
    let series: Vec<(&str, &p2plab_sim::TimeSeries)> = names
        .iter()
        .map(|n| n.as_str())
        .zip(result.progress.iter())
        .collect();
    let csv = series_to_csv(&series, SimDuration::from_secs(20), result.stopped_at);
    write_results_file("fig8_progress.csv", &csv);

    println!();
    println!(
        "{}",
        ascii_plot(
            "median client progress shape (percent)",
            &median_curve(&result),
            70,
            12
        )
    );
    println!("Paper: all three phases of a BitTorrent download are visible, and clients finish around 1500-2000 s.");
}

fn median_curve(result: &p2plab_core::SwarmResult) -> p2plab_sim::TimeSeries {
    // Build a "median client" curve by sampling all progress curves on a grid.
    let mut out = p2plab_sim::TimeSeries::new();
    let end = result.stopped_at;
    let step = SimDuration::from_secs(20);
    let mut t = p2plab_sim::SimTime::ZERO;
    while t <= end {
        let mut vals: Vec<f64> = result.progress.iter().map(|p| p.value_at(t, 0.0)).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if !vals.is_empty() {
            out.push(t, vals[vals.len() / 2]);
        }
        t += step;
    }
    out
}
