//! Figure 2: average per-process execution time vs number of concurrent CPU- and
//! memory-intensive processes; FreeBSD collapses once the aggregate working set exceeds RAM,
//! Linux 2.6 stays flat.
//!
//! ```text
//! cargo run --release -p p2plab-bench --bin fig2_memory_scaling
//! ```

use p2plab_bench::write_results_file;
use p2plab_core::{points_to_csv, render_table};
use p2plab_os::experiments::figure2_sweep;
use p2plab_os::SchedulerKind;

fn main() {
    let concurrencies = [5usize, 10, 15, 20, 25, 30, 35, 40, 45, 50];
    let sweeps: Vec<(SchedulerKind, Vec<(usize, f64)>)> = SchedulerKind::ALL
        .iter()
        .map(|&s| (s, figure2_sweep(s, &concurrencies)))
        .collect();

    let rows: Vec<Vec<String>> = concurrencies
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let mut row = vec![n.to_string()];
            row.extend(sweeps.iter().map(|(_, sweep)| format!("{:.2}", sweep[i].1)));
            row
        })
        .collect();
    let headers: Vec<&str> = std::iter::once("processes")
        .chain(SchedulerKind::ALL.iter().map(|s| s.label()))
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 2: avg per-process execution time (s), memory-intensive job, 2 GB RAM nodes",
            &headers,
            &rows
        )
    );
    println!("Paper: FreeBSD (ULE and 4BSD) execution times climb steeply once swap is used (~25 processes");
    println!("at 80 MB per process); Linux 2.6 stays nearly flat. P2PLab therefore keeps experiments in RAM.");

    for (sched, sweep) in &sweeps {
        let points: Vec<(f64, f64)> = sweep.iter().map(|&(n, v)| (n as f64, v)).collect();
        write_results_file(
            &format!(
                "fig2_{}.csv",
                sched.label().replace(' ', "_").to_lowercase()
            ),
            &points_to_csv("processes", "avg_exec_time_s", &points),
        );
    }
}
