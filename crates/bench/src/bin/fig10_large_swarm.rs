//! Figure 10: download progress of selected clients in the 5760-node scalability run
//! (5754 clients + 4 seeders + tracker on 180 machines, clients started every 0.25 s).
//!
//! ```text
//! # paper scale (5754 clients; takes a few minutes and several GB of RAM):
//! cargo run --release -p p2plab-bench --bin fig10_large_swarm -- 1.0
//! # default: 10% scale
//! cargo run --release -p p2plab-bench --bin fig10_large_swarm
//! ```

use p2plab_bench::{arg_scale, write_results_file, write_run_report};
use p2plab_core::{
    completion_summary, run_reported, series_to_csv, SwarmExperiment, SwarmWorkload,
};
use p2plab_sim::{SimDuration, SimTime};

fn main() {
    let scale = arg_scale(0.1, 0.002);
    let cfg = SwarmExperiment::paper_figure10(scale);
    println!(
        "Figure 10: {} clients + {} seeders on {} machines ({:.0} virtual nodes per machine), start interval {}",
        cfg.leechers,
        cfg.seeders,
        cfg.machines,
        cfg.folding_ratio(),
        cfg.start_interval
    );
    let (result, report) =
        run_reported(&cfg.to_scenario(), SwarmWorkload::new(cfg.clone())).expect("scenario runs");
    write_run_report("", &report);
    println!("{}", result.summary());
    println!("simulation executed {} events\n", result.events_executed);

    if let Some(s) = completion_summary(&result) {
        println!(
            "completions: first {} / median {} / last {} (p5-p95 spread {:.0} s)",
            s.first, s.median, s.last, s.p5_p95_spread_secs
        );
        println!(
            "Paper observation: 'most clients finish their downloads nearly at the same time' — here the\n\
             p5-p95 spread is {:.0}% of the median completion time.\n",
            100.0 * s.p5_p95_spread_secs / s.median.as_secs_f64()
        );
    }

    // The paper plots clients 50, 100, 150, ... 5750; sample the same way, scaled.
    let stride = (result.progress.len() / 115).max(1);
    println!("Selected clients (the paper samples every 50th client):");
    println!(
        "{:>8}  {:>10}  {:>10}  {:>10}",
        "client", "25% at", "75% at", "done at"
    );
    for (i, p) in result.progress.iter().enumerate().step_by(stride * 8) {
        let fmt = |t: Option<SimTime>| {
            t.map(|t| format!("{:.0}s", t.as_secs_f64()))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:>8}  {:>10}  {:>10}  {:>10}",
            i,
            fmt(p.time_to_reach(25.0)),
            fmt(p.time_to_reach(75.0)),
            fmt(p.time_to_reach(100.0))
        );
    }

    let sampled: Vec<(String, &p2plab_sim::TimeSeries)> = result
        .progress
        .iter()
        .enumerate()
        .step_by(stride)
        .map(|(i, p)| (format!("client{i}"), p))
        .collect();
    let series: Vec<(&str, &p2plab_sim::TimeSeries)> =
        sampled.iter().map(|(n, p)| (n.as_str(), *p)).collect();
    write_results_file(
        "fig10_selected_progress.csv",
        &series_to_csv(&series, SimDuration::from_secs(25), result.stopped_at),
    );
}
