//! Figure 9: the folding-ratio experiment — the same 160-client download deployed on 160, 16,
//! 8, 4 and 2 physical machines (1 to 80 virtual nodes per machine); the total-data-received
//! curves must be nearly identical.
//!
//! ```text
//! cargo run --release -p p2plab-bench --bin fig9_folding_ratio [scale]
//! ```

use p2plab_bench::{arg_scale, write_results_file, write_run_report};
use p2plab_core::{
    compare_folding, render_table, run_reported, series_to_csv, SwarmExperiment, SwarmWorkload,
};
use p2plab_sim::SimDuration;

fn main() {
    let scale = arg_scale(1.0, 0.05);
    let ratios = [1usize, 10, 20, 40, 80];
    let mut results = Vec::new();
    for &per_machine in &ratios {
        let mut cfg = SwarmExperiment::paper_figure9(per_machine);
        if scale < 1.0 {
            cfg.leechers = ((cfg.leechers as f64 * scale).round() as usize).max(8);
            let total = cfg.leechers + cfg.seeders + 1;
            cfg.machines = total.div_ceil(per_machine);
            cfg.name = format!("figure9-{per_machine}-per-machine-{}-clients", cfg.leechers);
        }
        println!(
            "running {} ({} machines, folding {:.1}:1)...",
            cfg.name,
            cfg.machines,
            cfg.folding_ratio()
        );
        let (r, report) = run_reported(&cfg.to_scenario(), SwarmWorkload::new(cfg.clone()))
            .expect("scenario runs");
        write_run_report("", &report);
        println!(
            "  {} (peak NIC utilization {:.0}%)",
            r.summary(),
            100.0 * r.peak_nic_utilization
        );
        results.push(r);
    }

    let baseline = &results[0];
    let folded: Vec<&_> = results[1..].iter().collect();
    let cmp = compare_folding(baseline, &folded);
    let rows: Vec<Vec<String>> = cmp
        .rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}", r.folding_ratio),
                format!("{:.2}%", 100.0 * r.max_relative_deviation),
                format!("{:.3}", r.completion_ks_distance),
                r.median_completion
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "n/a".into()),
                format!("{:.0}%", 100.0 * r.completion_fraction),
            ]
        })
        .collect();
    println!();
    println!(
        "{}",
        render_table(
            "Figure 9: deviation of folded deployments from the 1-client-per-machine baseline",
            &[
                "clients/machine",
                "max curve deviation",
                "KS distance",
                "median completion",
                "completed"
            ],
            &rows
        )
    );
    println!(
        "worst-case deviation: {:.2}% of total data (paper: curves are 'nearly identical' up to 80:1,\n\
         limited only by the physical Gigabit network once emulated links get faster)",
        100.0 * cmp.worst_deviation()
    );

    let names: Vec<String> = results
        .iter()
        .map(|r| format!("{:.0}_per_machine", r.folding_ratio))
        .collect();
    let series: Vec<(&str, &p2plab_sim::TimeSeries)> = names
        .iter()
        .map(|n| n.as_str())
        .zip(results.iter().map(|r| &r.total_downloaded))
        .collect();
    let end = results.iter().map(|r| r.stopped_at).max().unwrap();
    write_results_file(
        "fig9_total_data.csv",
        &series_to_csv(&series, SimDuration::from_secs(20), end),
    );
}
