//! Shared helpers for the benchmark harness and the figure-regeneration binaries.
//!
//! Every table and figure of the paper's evaluation has two entry points:
//!
//! * a **binary** (`cargo run --release -p p2plab-bench --bin fig8_swarm_progress`) that runs
//!   the experiment at paper scale (or a scale given on the command line) and prints the same
//!   rows/series the figure plots;
//! * a **Criterion bench** (`cargo bench -p p2plab-bench`) that exercises the same code path at
//!   a reduced scale so the whole suite stays fast and can run in CI.

#![warn(missing_docs)]

use std::io::Write;
use std::path::PathBuf;

/// Scale factor passed on the command line (first argument), clamped to `[min, 1.0]`.
/// Defaults to `default` when absent or unparsable.
pub fn arg_scale(default: f64, min: f64) -> f64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(default)
        .clamp(min, 1.0)
}

/// Writes `contents` into `results/<name>` at the workspace root (creating the directory)
/// and reports where it went. Figure binaries use this to leave CSV files behind for plotting.
pub fn write_results_file(name: &str, contents: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    std::fs::create_dir_all(&dir).expect("create results directory");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create results file");
    f.write_all(contents.as_bytes())
        .expect("write results file");
    println!("[results written to {}]", path.display());
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_scale_defaults_and_clamps() {
        // No meaningful CLI args in the test harness: the default must come back clamped.
        assert_eq!(arg_scale(0.5, 0.1), 0.5);
        assert_eq!(arg_scale(2.0, 0.1), 1.0);
        assert_eq!(arg_scale(0.01, 0.1), 0.1);
    }

    #[test]
    fn results_files_land_in_results_dir() {
        let path = write_results_file("bench_selftest.csv", "a,b\n1,2\n");
        assert!(path.exists());
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.starts_with("a,b"));
        std::fs::remove_file(path).ok();
    }
}
