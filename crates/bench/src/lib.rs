//! Shared helpers for the benchmark harness and the figure-regeneration binaries.
//!
//! Every table and figure of the paper's evaluation has two entry points:
//!
//! * a **binary** (`cargo run --release -p p2plab-bench --bin fig8_swarm_progress`) that runs
//!   the experiment at paper scale (or a scale given on the command line) and prints the same
//!   rows/series the figure plots;
//! * a **Criterion bench** (`cargo bench -p p2plab-bench`) that exercises the same code path at
//!   a reduced scale so the whole suite stays fast and can run in CI.

#![warn(missing_docs)]

use p2plab_core::RunReport;
use std::io::Write;
use std::path::PathBuf;

/// Scale factor passed on the command line (first argument), clamped to `[min, 1.0]`.
/// Defaults to `default` when absent or unparsable.
pub fn arg_scale(default: f64, min: f64) -> f64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(default)
        .clamp(min, 1.0)
}

/// Writes a run's [`RunReport`] as JSON (plus its scalar-metrics CSV) under `results/`,
/// verifying on the way out that the JSON round-trips through the loader — a bench binary can
/// never leave behind an artifact the tooling cannot read back. Returns the JSON path.
///
/// `label` distinguishes multiple reports of one binary (`""` uses the scenario name alone).
pub fn write_run_report(label: &str, report: &RunReport) -> PathBuf {
    let json = report.to_json();
    let loaded = RunReport::from_json(&json).expect("run report JSON must parse back");
    assert_eq!(
        &loaded, report,
        "run report drifted through JSON round-trip"
    );
    let stem = sanitize_stem(&format!(
        "{}{}{}",
        report.scenario,
        if label.is_empty() { "" } else { "-" },
        label
    ));
    write_results_file(&format!("{stem}.metrics.csv"), &report.scalars_csv());
    write_results_file(&format!("{stem}.report.json"), &json)
}

/// Like [`write_run_report`], but places the artifacts under `results/<subdir>/` (creating the
/// whole chain of directories). Campaign cells use this to keep each grid cell's report in its
/// own directory.
pub fn write_run_report_in(subdir: &str, label: &str, report: &RunReport) -> PathBuf {
    let json = report.to_json();
    let loaded = RunReport::from_json(&json).expect("run report JSON must parse back");
    assert_eq!(
        &loaded, report,
        "run report drifted through JSON round-trip"
    );
    let stem = sanitize_stem(&format!(
        "{}{}{}",
        report.scenario,
        if label.is_empty() { "" } else { "-" },
        label
    ));
    write_results_file(
        &format!("{subdir}/{stem}.metrics.csv"),
        &report.scalars_csv(),
    );
    write_results_file(&format!("{subdir}/{stem}.report.json"), &json)
}

/// Keeps `[A-Za-z0-9._-]` and replaces everything else with `_`, so scenario names can't
/// escape the results directory or produce awkward filenames.
fn sanitize_stem(raw: &str) -> String {
    raw.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Writes `contents` into `results/<name>` at the workspace root and reports where it went.
/// `name` may contain `/`-separated subdirectories; every missing parent is created. Figure
/// binaries use this to leave CSV files behind for plotting.
pub fn write_results_file(name: &str, contents: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    let path = dir.join(name);
    let parent = path.parent().expect("results path has a parent");
    std::fs::create_dir_all(parent).expect("create results directory");
    let mut f = std::fs::File::create(&path).expect("create results file");
    f.write_all(contents.as_bytes())
        .expect("write results file");
    println!("[results written to {}]", path.display());
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_scale_defaults_and_clamps() {
        // No meaningful CLI args in the test harness: the default must come back clamped.
        assert_eq!(arg_scale(0.5, 0.1), 0.5);
        assert_eq!(arg_scale(2.0, 0.1), 1.0);
        assert_eq!(arg_scale(0.01, 0.1), 0.1);
    }

    #[test]
    fn results_files_land_in_results_dir() {
        let path = write_results_file("bench_selftest.csv", "a,b\n1,2\n");
        assert!(path.exists());
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.starts_with("a,b"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn results_files_create_missing_parent_dirs() {
        // Regression: writing into a not-yet-existing subdirectory chain must succeed rather
        // than panic on File::create.
        let path = write_results_file("bench_selftest_nested/deeper/file.csv", "a,b\n3,4\n");
        assert!(path.exists());
        let root = path.parent().unwrap().parent().unwrap();
        assert!(root.ends_with("bench_selftest_nested"));
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn run_reports_land_in_results_dir_and_parse_back() {
        use p2plab_sim::{Recorder, RunOutcome, SimTime};
        let mut rec = Recorder::new();
        let c = rec.counter("events");
        rec.add(c, 3);
        let report = RunReport {
            workload: "selftest".into(),
            scenario: "bench selftest/report".into(), // exercises filename sanitization
            seed: 1,
            machines: 1,
            vnodes: 2,
            participants: 2,
            folding_ratio: 2.0,
            wall_secs: 0.0,
            stopped_at: SimTime::from_secs(1),
            events_executed: 9,
            events_per_sec: 0.0,
            outcome: RunOutcome::Drained,
            spec: vec![("name".into(), "selftest".into())],
            metrics: rec.finish(),
        };
        let path = write_run_report("unit", &report);
        assert!(path.ends_with("bench_selftest_report-unit.report.json"));
        let loaded = RunReport::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(loaded, report);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(path.with_extension("").with_extension("metrics.csv")).ok();
    }
}
