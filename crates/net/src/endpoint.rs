//! The node-facing session API: per-vnode [`Endpoint`] handles over bound ports, connections
//! and typed lanes.
//!
//! An [`Endpoint`] is a virtual node's view of its transport stack — the handle through which
//! an application binds ports, opens and closes connections, and sends messages on typed
//! [`LaneKind`] lanes or as connectionless datagrams. The passive state (listener table,
//! connection arena, counters) lives in the [`Network`]; the endpoint is a cheap `Copy`
//! capability that names the vnode, so application code can hold one per protocol instance
//! without borrowing the world.
//!
//! Incoming traffic reaches the application through
//! [`NetHost::on_transport_event`](crate::transport::NetHost) as
//! [`TransportEvent`](crate::transport::TransportEvent)s. A typed request/response layer over
//! the unreliable datagram path lives in [`crate::rpc`].
//!
//! ```
//! use p2plab_net::{
//!     AccessLinkClass, Endpoint, GroupId, LaneKind, NetHost, NetSim, Network, NetworkConfig,
//!     TopologySpec, TransportEvent, VNodeId, VirtAddr,
//! };
//! use p2plab_sim::Simulation;
//!
//! /// A world whose nodes echo every message back on the lane it arrived on.
//! struct Echo {
//!     net: Network,
//!     delivered: Vec<(VNodeId, LaneKind, u32)>,
//! }
//!
//! impl NetHost for Echo {
//!     type Payload = u32;
//!     fn network(&mut self) -> &mut Network {
//!         &mut self.net
//!     }
//!     fn on_transport_event(sim: &mut NetSim<Self>, node: VNodeId, ev: TransportEvent<u32>) {
//!         if let TransportEvent::Message { conn, lane, payload, size, .. } = ev {
//!             sim.world_mut().delivered.push((node, lane, payload));
//!             if payload < 1000 {
//!                 let _ = Endpoint::new(node).send(sim, conn, lane, size, payload + 1000);
//!             }
//!         }
//!     }
//! }
//!
//! // Two DSL nodes folded onto one machine.
//! let topo = TopologySpec::uniform("doc", 2, AccessLinkClass::bittorrent_dsl());
//! let mut net = Network::new(NetworkConfig::default(), topo);
//! let m = net.add_machine("pm0", VirtAddr::new(192, 168, 38, 1));
//! let a = net.add_vnode(m, VirtAddr::new(10, 0, 0, 1), GroupId(0)).unwrap();
//! let b = net.add_vnode(m, VirtAddr::new(10, 0, 0, 2), GroupId(0)).unwrap();
//! let peer = p2plab_net::SocketAddr::new(net.addr_of(b), 6881);
//!
//! let mut sim: NetSim<Echo> = Simulation::with_events(Echo { net, delivered: vec![] }, 1);
//! let server = Endpoint::new(b);
//! server.bind(&mut sim, 6881).unwrap();
//! let client = Endpoint::new(a);
//! let conn = client.connect(&mut sim, peer).unwrap();
//! sim.run();
//! // Send on two different lanes of the same connection; the echo comes back on each.
//! client.send(&mut sim, conn, LaneKind::ReliableOrdered, 512, 1).unwrap();
//! client.send(&mut sim, conn, LaneKind::UnreliableUnordered, 64, 2).unwrap();
//! sim.run();
//! assert!(sim.world().delivered.contains(&(b, LaneKind::ReliableOrdered, 1)));
//! assert!(sim.world().delivered.contains(&(a, LaneKind::UnreliableUnordered, 1002)));
//! ```

use crate::addr::SocketAddr;
use crate::lane::LaneKind;
use crate::network::{ConnId, Connection, NetError, Network, VNodeId};
use crate::transport::{self, NetHost, NetSim};

/// A virtual node's transport handle: bound ports, connections and lane sends.
///
/// Cheap to create and `Copy` — an endpoint is the *name* of a vnode's transport stack, not a
/// stateful object, so protocol code can construct one wherever it holds a [`VNodeId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Endpoint {
    node: VNodeId,
}

impl Endpoint {
    /// The endpoint of virtual node `node`.
    pub fn new(node: VNodeId) -> Endpoint {
        Endpoint { node }
    }

    /// The virtual node this endpoint belongs to.
    pub fn node(&self) -> VNodeId {
        self.node
    }

    /// Binds `port` for incoming connections and datagrams. Fails with
    /// [`NetError::PortInUse`] when the port is already bound on this node.
    pub fn bind<W: NetHost>(&self, sim: &mut NetSim<W>, port: u16) -> Result<(), NetError> {
        transport::op_bind(sim, self.node, port)
    }

    /// Releases a bound port. Returns whether it was bound. Established connections accepted
    /// through the port are unaffected (as with a real listening socket).
    pub fn unbind<W: NetHost>(&self, sim: &mut NetSim<W>, port: u16) -> bool {
        transport::op_unbind(sim, self.node, port)
    }

    /// Initiates a connection to `remote`. The outcome arrives asynchronously as
    /// [`TransportEvent::Connected`](crate::transport::TransportEvent::Connected) or
    /// [`TransportEvent::Refused`](crate::transport::TransportEvent::Refused).
    pub fn connect<W: NetHost>(
        &self,
        sim: &mut NetSim<W>,
        remote: SocketAddr,
    ) -> Result<ConnId, NetError> {
        transport::op_connect(sim, self.node, remote)
    }

    /// Sends `payload` (`size` application bytes) on `lane` of the established connection
    /// `conn`. The lane fixes the framing overhead charged on the wire and the retransmit
    /// policy applied if a pipe drops the frame (see [`LaneKind`]).
    pub fn send<W: NetHost>(
        &self,
        sim: &mut NetSim<W>,
        conn: ConnId,
        lane: LaneKind,
        size: u64,
        payload: W::Payload,
    ) -> Result<(), NetError> {
        transport::op_send(sim, self.node, conn, lane, size, payload)
    }

    /// Sends an unreliable connectionless datagram from `from_port` to `remote`. The receiver
    /// sees the destination port as
    /// [`TransportEvent::Datagram::to_port`](crate::transport::TransportEvent::Datagram), so a
    /// node bound on several ports can demultiplex.
    pub fn send_datagram<W: NetHost>(
        &self,
        sim: &mut NetSim<W>,
        from_port: u16,
        remote: SocketAddr,
        size: u64,
        payload: W::Payload,
    ) -> Result<(), NetError> {
        transport::op_send_datagram(sim, self.node, from_port, remote, size, payload)
    }

    /// Closes connection `conn` from this side and notifies the peer. Messages already in
    /// flight toward this node are discarded on arrival (the connection is closed); closing an
    /// already-closed connection is a no-op.
    pub fn close<W: NetHost>(&self, sim: &mut NetSim<W>, conn: ConnId) -> Result<(), NetError> {
        transport::op_close(sim, self.node, conn)
    }

    /// The ports this endpoint currently has bound, in arbitrary order (inspection helper,
    /// not for hot paths).
    pub fn bound_ports<'a>(&self, net: &'a Network) -> impl Iterator<Item = u16> + 'a {
        net.bound_ports(self.node)
    }

    /// The connections this endpoint participates in, in allocation order (inspection helper,
    /// not for hot paths).
    pub fn connections<'a>(&self, net: &'a Network) -> impl Iterator<Item = &'a Connection> + 'a {
        net.connections_of(self.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{ConnState, Network, NetworkConfig};
    use crate::topology::{AccessLinkClass, GroupId, TopologySpec};
    use crate::transport::TransportEvent;
    use crate::VirtAddr;
    use p2plab_sim::Simulation;

    /// Records every transport event as `(node, label)`.
    struct World {
        net: Network,
        seen: Vec<(VNodeId, String)>,
    }

    impl NetHost for World {
        type Payload = u32;

        fn network(&mut self) -> &mut Network {
            &mut self.net
        }

        fn on_transport_event(sim: &mut NetSim<Self>, node: VNodeId, ev: TransportEvent<u32>) {
            let label = match ev {
                TransportEvent::Connected { .. } => "connected".into(),
                TransportEvent::Refused { .. } => "refused".into(),
                TransportEvent::Accepted { .. } => "accepted".into(),
                TransportEvent::Message { lane, payload, .. } => {
                    format!("msg:{lane:?}:{payload}")
                }
                TransportEvent::Datagram {
                    to_port, payload, ..
                } => format!("dgram:{to_port}:{payload}"),
                TransportEvent::Closed { .. } => "closed".into(),
            };
            sim.world_mut().seen.push((node, label));
        }
    }

    fn world(n: usize) -> World {
        let topo = TopologySpec::uniform("lan", n, AccessLinkClass::bittorrent_dsl());
        let mut net = Network::new(NetworkConfig::default(), topo);
        let m = net.add_machine("pm0", VirtAddr::new(192, 168, 38, 1));
        for i in 0..n {
            net.add_vnode(
                m,
                VirtAddr::new(10, 0, 0, 0).offset(i as u32 + 1),
                GroupId(0),
            )
            .unwrap();
        }
        World {
            net,
            seen: Vec::new(),
        }
    }

    #[test]
    fn lane_tag_travels_with_the_message() {
        let w = world(2);
        let peer = SocketAddr::new(w.net.addr_of(VNodeId(1)), 7000);
        let mut sim: NetSim<World> = Simulation::with_events(w, 1);
        Endpoint::new(VNodeId(1)).bind(&mut sim, 7000).unwrap();
        let ep = Endpoint::new(VNodeId(0));
        let conn = ep.connect(&mut sim, peer).unwrap();
        sim.run();
        for lane in LaneKind::ALL {
            ep.send(&mut sim, conn, lane, 100, 7).unwrap();
        }
        sim.run();
        let seen = &sim.world().seen;
        for lane in LaneKind::ALL {
            assert!(
                seen.contains(&(VNodeId(1), format!("msg:{lane:?}:7"))),
                "missing {lane:?} delivery in {seen:?}"
            );
        }
    }

    #[test]
    fn unbind_releases_the_port() {
        let w = world(2);
        let addr1 = w.net.addr_of(VNodeId(1));
        let mut sim: NetSim<World> = Simulation::with_events(w, 1);
        let server = Endpoint::new(VNodeId(1));
        server.bind(&mut sim, 7000).unwrap();
        assert!(server.unbind(&mut sim, 7000));
        assert!(!server.unbind(&mut sim, 7000), "second unbind is a no-op");
        // Rebinding works, and a connect to the unbound port is refused in between.
        let conn = Endpoint::new(VNodeId(0))
            .connect(&mut sim, SocketAddr::new(addr1, 7000))
            .unwrap();
        sim.run();
        assert_eq!(
            sim.world_mut().net.connection(conn).unwrap().state,
            ConnState::Refused
        );
        server.bind(&mut sim, 7000).unwrap();
    }

    #[test]
    fn endpoint_reports_its_ports_and_connections() {
        let w = world(3);
        let peer = SocketAddr::new(w.net.addr_of(VNodeId(1)), 7000);
        let mut sim: NetSim<World> = Simulation::with_events(w, 1);
        let server = Endpoint::new(VNodeId(1));
        server.bind(&mut sim, 7000).unwrap();
        server.bind(&mut sim, 7001).unwrap();
        let client = Endpoint::new(VNodeId(0));
        let conn = client.connect(&mut sim, peer).unwrap();
        sim.run();

        let net = &sim.world().net;
        let mut ports: Vec<u16> = server.bound_ports(net).collect();
        ports.sort_unstable();
        assert_eq!(ports, vec![7000, 7001]);
        assert_eq!(client.bound_ports(net).count(), 0);
        // Both sides see the one connection; the bystander sees none.
        assert_eq!(
            client.connections(net).map(|c| c.id).collect::<Vec<_>>(),
            vec![conn]
        );
        assert_eq!(server.connections(net).count(), 1);
        assert_eq!(Endpoint::new(VNodeId(2)).connections(net).count(), 0);
        assert_eq!(server.node(), VNodeId(1));
    }

    #[test]
    fn endpoint_rejects_foreign_connections() {
        let w = world(3);
        let peer = SocketAddr::new(w.net.addr_of(VNodeId(1)), 7000);
        let mut sim: NetSim<World> = Simulation::with_events(w, 1);
        Endpoint::new(VNodeId(1)).bind(&mut sim, 7000).unwrap();
        let conn = Endpoint::new(VNodeId(0)).connect(&mut sim, peer).unwrap();
        sim.run();
        // A third node cannot send or close on a connection it is not part of.
        let stranger = Endpoint::new(VNodeId(2));
        assert_eq!(
            stranger.send(&mut sim, conn, LaneKind::ReliableOrdered, 10, 1),
            Err(NetError::UnknownConnection(conn))
        );
        assert_eq!(
            stranger.close(&mut sim, conn),
            Err(NetError::UnknownConnection(conn))
        );
    }
}
