//! Dummynet-style pipes.
//!
//! Dummynet (the FreeBSD traffic shaper P2PLab relies on) shapes traffic through *pipes*: a
//! packet entering a pipe is queued behind earlier packets, drained at the pipe's configured
//! bandwidth, then held for the pipe's propagation delay before being released. Pipes can also
//! drop packets, either randomly (packet loss rate) or because the bounded queue overflows.
//!
//! The model here is exact for FIFO fixed-rate queues: the departure time of a packet is
//! `max(arrival, previous departure) + size/bandwidth`, so per-packet state is just the time the
//! queue becomes idle plus a short window of recent departures for occupancy accounting.

use crate::proto::LinkCondition;
use p2plab_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Index of a pipe in the network's pipe arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PipeId(pub usize);

/// Configuration of a dummynet pipe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipeConfig {
    /// Drain rate in bits per second. `None` means unlimited (a pure-delay pipe, as used for
    /// inter-group latency rules).
    pub bandwidth_bps: Option<u64>,
    /// Propagation delay added after the packet leaves the queue.
    pub delay: SimDuration,
    /// Random packet loss rate in `[0, 1]`.
    pub loss_rate: f64,
    /// Queue bound in bytes; arrivals that would push occupancy beyond this are dropped.
    /// `None` means unbounded.
    pub queue_limit_bytes: Option<u64>,
    /// Optional link conditioner (jitter, reordering, duplication, burst loss) stacked on the
    /// base model. `None` keeps the pipe byte-identical to the pre-conditioner behaviour.
    pub condition: Option<LinkCondition>,
}

impl PipeConfig {
    /// A pipe that only rate-limits and delays, with dummynet's default 50-slot (~75 KB) queue.
    pub fn shaped(bandwidth_bps: u64, delay: SimDuration) -> PipeConfig {
        PipeConfig {
            bandwidth_bps: Some(bandwidth_bps),
            delay,
            loss_rate: 0.0,
            queue_limit_bytes: Some(75_000),
            condition: None,
        }
    }

    /// A pure-delay pipe (used for inter-group latency).
    pub fn delay_only(delay: SimDuration) -> PipeConfig {
        PipeConfig {
            bandwidth_bps: None,
            delay,
            loss_rate: 0.0,
            queue_limit_bytes: None,
            condition: None,
        }
    }

    /// Adds a random loss rate.
    pub fn with_loss(mut self, loss_rate: f64) -> PipeConfig {
        assert!(
            (0.0..=1.0).contains(&loss_rate),
            "loss rate must be in [0,1]"
        );
        self.loss_rate = loss_rate;
        self
    }

    /// Overrides the queue bound.
    pub fn with_queue_limit(mut self, bytes: Option<u64>) -> PipeConfig {
        self.queue_limit_bytes = bytes;
        self
    }

    /// Stacks a link conditioner on the pipe. Inert conditioners are normalized to `None`, so
    /// the hot path's "no conditioner" check stays a plain `Option` test.
    pub fn with_condition(mut self, condition: Option<LinkCondition>) -> PipeConfig {
        self.condition = condition.filter(|c| !c.is_noop());
        self
    }

    /// The minimum time any forwarded packet spends in this pipe: the configured propagation
    /// delay. Queueing and serialization only add to it, and conditioners (jitter, reordering)
    /// only add extra hold-back — never deliver early. This floor is what the sharded
    /// runtime's conservative lookahead is derived from.
    pub fn transit_floor(&self) -> SimDuration {
        self.delay
    }
}

/// Why a packet was dropped by a pipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// Random loss (the pipe's configured packet loss rate).
    RandomLoss,
    /// The bounded queue was full.
    QueueOverflow,
    /// The conditioner's Gilbert–Elliott chain was in its bad state (burst loss).
    BurstLoss,
}

/// Result of offering a packet to a pipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// The packet will be released at the given time (queueing + transmission + delay).
    Forwarded {
        /// Time the packet leaves the pipe (including propagation delay).
        exit: SimTime,
        /// Release time of a conditioner-duplicated copy, when the conditioner emitted one
        /// (always strictly after `exit` — the copy is charged its own serialization).
        dup: Option<SimTime>,
    },
    /// The packet was dropped.
    Dropped(DropReason),
}

/// Counters kept by every pipe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipeStats {
    /// Packets forwarded.
    pub forwarded_packets: u64,
    /// Bytes forwarded.
    pub forwarded_bytes: u64,
    /// Packets dropped by random loss.
    pub dropped_loss: u64,
    /// Packets dropped by queue overflow.
    pub dropped_overflow: u64,
    /// Packets dropped by the conditioner's burst-loss chain.
    pub dropped_burst: u64,
}

/// A dummynet pipe instance.
#[derive(Debug, Clone)]
pub struct Pipe {
    config: PipeConfig,
    /// Time at which the transmission queue becomes idle.
    busy_until: SimTime,
    /// Recent departures `(queue exit time, size)` kept for occupancy accounting.
    in_queue: VecDeque<(SimTime, u64)>,
    /// Running sum of the sizes in `in_queue`, so occupancy checks are O(1) per packet
    /// instead of a queue scan (batched accounting: the scan only happens implicitly, as the
    /// prune pops expired departures).
    queued: u64,
    /// Gilbert–Elliott chain state of the conditioner (`true` = bad state).
    bad: bool,
    stats: PipeStats,
}

impl Pipe {
    /// Creates a pipe from its configuration.
    pub fn new(config: PipeConfig) -> Pipe {
        Pipe {
            config,
            busy_until: SimTime::ZERO,
            in_queue: VecDeque::new(),
            queued: 0,
            bad: false,
            stats: PipeStats::default(),
        }
    }

    /// The pipe's configuration.
    pub fn config(&self) -> &PipeConfig {
        &self.config
    }

    /// Replaces the pipe's configuration (used when reconfiguring an emulated link mid-run).
    /// Queued traffic keeps its already-computed departure times.
    pub fn reconfigure(&mut self, config: PipeConfig) {
        self.config = config;
    }

    /// Traffic counters.
    pub fn stats(&self) -> PipeStats {
        self.stats
    }

    /// Bytes currently waiting in (or being serialized by) the transmission queue at `now`.
    pub fn queued_bytes(&mut self, now: SimTime) -> u64 {
        self.prune(now);
        self.queued
    }

    /// Offers a packet of `size` bytes to the pipe at time `now`.
    pub fn enqueue(&mut self, now: SimTime, size: u64, rng: &mut SimRng) -> EnqueueOutcome {
        if rng.chance(self.config.loss_rate) {
            self.stats.dropped_loss += 1;
            return EnqueueOutcome::Dropped(DropReason::RandomLoss);
        }
        let condition = self.config.condition;
        if let Some(burst) = condition.and_then(|c| c.burst) {
            if burst.step(&mut self.bad, rng) {
                self.stats.dropped_burst += 1;
                return EnqueueOutcome::Dropped(DropReason::BurstLoss);
            }
        }
        self.prune(now);
        if let Some(limit) = self.config.queue_limit_bytes {
            if self.queued + size > limit && !self.in_queue.is_empty() {
                self.stats.dropped_overflow += 1;
                return EnqueueOutcome::Dropped(DropReason::QueueOverflow);
            }
        }
        let queue_exit = self.serialize(now, size);
        let mut latency = self.config.delay;
        if let Some(c) = condition.as_ref() {
            latency += c.extra_latency(rng);
        }
        self.stats.forwarded_packets += 1;
        self.stats.forwarded_bytes += size;
        let exit = queue_exit + latency;
        let dup = match condition.as_ref() {
            Some(c) if c.duplicates(rng) => self.duplicate_exit(now, size, exit),
            _ => None,
        };
        EnqueueOutcome::Forwarded { exit, dup }
    }

    /// Charges one serialization slot and returns its queue exit time.
    fn serialize(&mut self, now: SimTime, size: u64) -> SimTime {
        match self.config.bandwidth_bps {
            Some(bps) => {
                let start = self.busy_until.max(now);
                let exit = start + SimDuration::transmission(size, bps);
                self.busy_until = exit;
                self.in_queue.push_back((exit, size));
                self.queued += size;
                exit
            }
            None => now,
        }
    }

    /// Serializes a conditioner-duplicated copy and returns its release time, kept strictly
    /// after the original's. The copy is dropped silently when the queue is full (a duplicate
    /// never evicts real traffic, and its loss is invisible by construction).
    fn duplicate_exit(&mut self, now: SimTime, size: u64, exit: SimTime) -> Option<SimTime> {
        if let Some(limit) = self.config.queue_limit_bytes {
            if self.queued + size > limit && !self.in_queue.is_empty() {
                return None;
            }
        }
        let dup_exit = self.serialize(now, size) + self.config.delay;
        self.stats.forwarded_packets += 1;
        self.stats.forwarded_bytes += size;
        Some(dup_exit.max(exit + SimDuration::from_nanos(1)))
    }

    fn prune(&mut self, now: SimTime) {
        while let Some(&(exit, size)) = self.in_queue.front() {
            if exit <= now {
                self.in_queue.pop_front();
                self.queued -= size;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(99)
    }

    #[test]
    fn delay_only_pipe_adds_latency() {
        let mut p = Pipe::new(PipeConfig::delay_only(SimDuration::from_millis(400)));
        let mut r = rng();
        match p.enqueue(SimTime::from_secs(1), 1500, &mut r) {
            EnqueueOutcome::Forwarded { exit, .. } => {
                assert_eq!(exit, SimTime::from_secs(1) + SimDuration::from_millis(400));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn bandwidth_serialization_delay() {
        // 128 kbps uplink, 16 KiB block: ~1.024 s of serialization plus 30 ms of delay.
        let mut p = Pipe::new(PipeConfig::shaped(128_000, SimDuration::from_millis(30)));
        let mut r = rng();
        let out = p.enqueue(SimTime::ZERO, 16 * 1024, &mut r);
        match out {
            EnqueueOutcome::Forwarded { exit, .. } => {
                let secs = exit.as_secs_f64();
                assert!((secs - 1.054).abs() < 0.001, "exit={secs}");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn back_to_back_packets_queue_behind_each_other() {
        let mut p =
            Pipe::new(PipeConfig::shaped(1_000_000, SimDuration::ZERO).with_queue_limit(None));
        let mut r = rng();
        // Each 1250-byte packet takes 10 ms at 1 Mbps.
        let exits: Vec<SimTime> = (0..3)
            .map(|_| match p.enqueue(SimTime::ZERO, 1250, &mut r) {
                EnqueueOutcome::Forwarded { exit, .. } => exit,
                other => panic!("unexpected: {other:?}"),
            })
            .collect();
        assert_eq!(exits[0], SimTime::from_millis(10));
        assert_eq!(exits[1], SimTime::from_millis(20));
        assert_eq!(exits[2], SimTime::from_millis(30));
        // After the queue drains, a later packet is not delayed by history.
        match p.enqueue(SimTime::from_secs(1), 1250, &mut r) {
            EnqueueOutcome::Forwarded { exit, .. } => {
                assert_eq!(exit, SimTime::from_secs(1) + SimDuration::from_millis(10));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn queue_limit_drops_excess() {
        let mut p =
            Pipe::new(PipeConfig::shaped(8_000, SimDuration::ZERO).with_queue_limit(Some(3000)));
        let mut r = rng();
        // 1000-byte packets take 1 s each at 8 kbps; the 4th arrival exceeds the 3000-byte bound.
        let mut outcomes = Vec::new();
        for _ in 0..4 {
            outcomes.push(p.enqueue(SimTime::ZERO, 1000, &mut r));
        }
        assert!(matches!(outcomes[0], EnqueueOutcome::Forwarded { .. }));
        assert!(matches!(outcomes[1], EnqueueOutcome::Forwarded { .. }));
        assert!(matches!(outcomes[2], EnqueueOutcome::Forwarded { .. }));
        assert_eq!(
            outcomes[3],
            EnqueueOutcome::Dropped(DropReason::QueueOverflow)
        );
        assert_eq!(p.stats().dropped_overflow, 1);
        assert_eq!(p.stats().forwarded_packets, 3);
    }

    #[test]
    fn full_loss_rate_drops_everything() {
        let mut p = Pipe::new(PipeConfig::delay_only(SimDuration::ZERO).with_loss(1.0));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(
                p.enqueue(SimTime::ZERO, 100, &mut r),
                EnqueueOutcome::Dropped(DropReason::RandomLoss)
            );
        }
        assert_eq!(p.stats().dropped_loss, 10);
    }

    #[test]
    fn partial_loss_rate_is_statistically_plausible() {
        let mut p = Pipe::new(PipeConfig::delay_only(SimDuration::ZERO).with_loss(0.2));
        let mut r = rng();
        let dropped = (0..10_000)
            .filter(|_| {
                matches!(
                    p.enqueue(SimTime::ZERO, 100, &mut r),
                    EnqueueOutcome::Dropped(_)
                )
            })
            .count();
        assert!((1700..2300).contains(&dropped), "dropped={dropped}");
    }

    #[test]
    fn queued_bytes_tracks_occupancy() {
        let mut p = Pipe::new(PipeConfig::shaped(8_000, SimDuration::ZERO).with_queue_limit(None));
        let mut r = rng();
        p.enqueue(SimTime::ZERO, 1000, &mut r); // drains at t=1s
        p.enqueue(SimTime::ZERO, 1000, &mut r); // drains at t=2s
        assert_eq!(p.queued_bytes(SimTime::from_millis(500)), 2000);
        assert_eq!(p.queued_bytes(SimTime::from_millis(1500)), 1000);
        assert_eq!(p.queued_bytes(SimTime::from_secs(3)), 0);
    }

    #[test]
    fn reconfigure_changes_future_traffic() {
        let mut p = Pipe::new(PipeConfig::shaped(1_000_000, SimDuration::ZERO));
        let mut r = rng();
        p.reconfigure(PipeConfig::shaped(2_000_000, SimDuration::ZERO));
        match p.enqueue(SimTime::ZERO, 2500, &mut r) {
            EnqueueOutcome::Forwarded { exit, .. } => assert_eq!(exit, SimTime::from_millis(10)),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn burst_loss_drops_in_runs() {
        use crate::proto::{BurstLoss, LinkCondition};
        let cfg = PipeConfig::delay_only(SimDuration::ZERO).with_condition(Some(
            LinkCondition::none().with_burst(BurstLoss::new(0.05, 0.25, 1.0)),
        ));
        let mut p = Pipe::new(cfg);
        let mut r = SimRng::new(2006);
        let dropped = (0..10_000)
            .filter(|_| {
                matches!(
                    p.enqueue(SimTime::ZERO, 100, &mut r),
                    EnqueueOutcome::Dropped(DropReason::BurstLoss)
                )
            })
            .count();
        assert_eq!(p.stats().dropped_burst as usize, dropped);
        // Stationary bad-state share is 1/6; allow a wide statistical band.
        assert!((1000..2500).contains(&dropped), "dropped={dropped}");
    }

    #[test]
    fn jitter_widens_exit_times() {
        use crate::proto::LinkCondition;
        let jitter = SimDuration::from_millis(5);
        let cfg = PipeConfig::delay_only(SimDuration::from_millis(10))
            .with_condition(Some(LinkCondition::none().with_jitter(jitter)));
        let mut p = Pipe::new(cfg);
        let mut r = rng();
        let mut distinct = std::collections::BTreeSet::new();
        for _ in 0..100 {
            match p.enqueue(SimTime::ZERO, 100, &mut r) {
                EnqueueOutcome::Forwarded { exit, .. } => {
                    assert!(exit >= SimTime::from_millis(10));
                    assert!(exit <= SimTime::from_millis(15));
                    distinct.insert(exit);
                }
                other => panic!("unexpected: {other:?}"),
            }
        }
        assert!(
            distinct.len() > 10,
            "jitter produced {} values",
            distinct.len()
        );
    }

    #[test]
    fn duplication_emits_strictly_later_copy() {
        use crate::proto::LinkCondition;
        let cfg = PipeConfig::shaped(1_000_000, SimDuration::from_millis(10))
            .with_queue_limit(None)
            .with_condition(Some(LinkCondition::none().with_duplication(1.0)));
        let mut p = Pipe::new(cfg);
        let mut r = rng();
        match p.enqueue(SimTime::ZERO, 1250, &mut r) {
            EnqueueOutcome::Forwarded { exit, dup } => {
                let dup = dup.expect("rate-1.0 duplication must emit a copy");
                assert!(dup > exit, "dup {dup:?} must be strictly after {exit:?}");
                // The copy was charged its own 10 ms serialization slot.
                assert_eq!(dup, exit + SimDuration::from_millis(10));
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(p.stats().forwarded_packets, 2);
    }

    #[test]
    fn inert_conditioner_is_normalized_away() {
        use crate::proto::LinkCondition;
        let cfg = PipeConfig::shaped(1_000_000, SimDuration::ZERO)
            .with_condition(Some(LinkCondition::none()));
        assert_eq!(cfg.condition, None);
    }
}
