//! # p2plab-net — the network-emulation substrate
//!
//! This crate models the part of P2PLab that makes many folded virtual nodes "look like real
//! separate nodes from the outside": per-virtual-node IP addresses configured as interface
//! aliases, a libc interception shim that binds each process to its own address, and a
//! decentralized Dummynet/IPFW network model where every physical machine shapes the traffic of
//! the virtual nodes it hosts (access-link bandwidth/latency/loss plus inter-group latency).
//!
//! Layers, from bottom to top:
//!
//! * [`addr`], [`iface`] — virtual IPv4 addressing and interface aliases;
//! * [`pipe`], [`firewall`] — dummynet pipes and linearly evaluated IPFW rules;
//! * [`topology`] — the edge-centric topology description (groups + access links);
//! * [`network`] — per-machine/per-node data-plane state;
//! * [`transport`] — the frame-level data plane walking the emulated path;
//! * [`lane`], [`endpoint`] — the node-facing session API: per-vnode [`Endpoint`] handles,
//!   connections carrying typed [`LaneKind`] lanes;
//! * [`proto`] — protocol depth under the lanes: MTU fragmentation, ack-bitfield
//!   reliability, pluggable congestion control and composable link conditioners;
//! * [`rpc`] — typed request/response calls with timeout and bounded retries over the
//!   unreliable lane;
//! * [`intercept`] — the BINDIP libc shim and its cost model;
//! * [`ping`](mod@ping) — the echo application used by the accuracy experiments.
//!
//! New protocol code talks to [`endpoint::Endpoint`] (and [`rpc`] for request/response
//! patterns); the free functions in [`transport`] are the frozen legacy surface.

#![warn(missing_docs)]

pub mod addr;
pub mod endpoint;
pub mod firewall;
pub mod iface;
pub mod intercept;
pub mod lane;
pub mod network;
pub mod ping;
pub mod pipe;
pub mod proto;
pub mod rpc;
pub mod tamper;
pub mod topology;
pub mod transport;

pub use addr::{AddrParseError, SocketAddr, Subnet, VirtAddr};
pub use endpoint::Endpoint;
pub use firewall::{Classification, Direction, Firewall, FirewallStats, Rule, RuleAction};
pub use iface::{IfaceError, Interface};
pub use intercept::InterceptConfig;
pub use lane::LaneKind;
pub use network::{
    ConnId, ConnState, Connection, MachineId, MachineNet, NetError, NetStats, Network,
    NetworkConfig, VNodeId, VNodeNet,
};
pub use ping::{ping, ping_series, PingPayload, PingWorld, ECHO_PORT};
pub use pipe::{DropReason, EnqueueOutcome, Pipe, PipeConfig, PipeId, PipeStats};
pub use proto::{
    Aimd, BurstLoss, CcKind, CongestionController, FragHeader, Legacy, LinkCondition,
    TransportConfig,
};
pub use rpc::{RpcConfig, RpcHost, RpcId, RpcOutcome, RpcPayload, RpcStats, RpcTable};
pub use tamper::{Misbehavior, TamperSpec};
pub use topology::{AccessLinkClass, GroupId, GroupSpec, TopologySpec};
// lint:allow(bare-allow) — re-exporting the frozen compat surface trips its own deprecation
#[allow(deprecated)]
pub use transport::{close, connect, listen, send, send_datagram}; // lint:allow(deprecated-socket) — this is the frozen compat re-export itself
pub use transport::{InFlight, NetEvent, NetHost, NetSim, SockEvent, TransportEvent}; // lint:allow(deprecated-socket) — `SockEvent` stays exported for legacy worlds
