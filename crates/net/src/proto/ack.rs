//! Ack-bitfield reliability: wrapping sequence numbers, the receive-side tracker and the
//! send-side window.
//!
//! The wire format follows the classic game-networking shape (aeronet, Gaffer-style acks): an
//! acknowledgement names the **latest** sequence number received plus a 32-bit bitfield where
//! bit `k` acknowledges sequence `latest - 1 - k`. One ack therefore covers a sliding window of
//! 33 fragments, and losing an ack frame is harmless — the next one re-covers the window.
//!
//! Sequence numbers are 16-bit and wrap; comparisons use serial-number arithmetic
//! ([`seq_newer`]), so the scheme is sound as long as fewer than 2^15 fragments are in flight
//! per (connection, direction, lane) — far beyond any window the congestion controllers allow.

use p2plab_sim::SimTime;
use std::collections::VecDeque;

/// Serial-number comparison on wrapping u16 sequence numbers: is `a` newer than `b`?
pub fn seq_newer(a: u16, b: u16) -> bool {
    a != b && a.wrapping_sub(b) < 0x8000
}

/// An acknowledgement: the latest received sequence plus a window bitfield (bit `k` set ⇔
/// `latest - 1 - k` was received).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AckBitfield {
    /// Latest sequence number received.
    pub latest: u16,
    /// Window bitfield over the 32 sequences preceding `latest`.
    pub bits: u32,
}

impl AckBitfield {
    /// Whether the bitfield acknowledges `seq`.
    pub fn contains(&self, seq: u16) -> bool {
        if seq == self.latest {
            return true;
        }
        let diff = self.latest.wrapping_sub(seq);
        (1..=32).contains(&diff) && self.bits & (1u32 << (diff - 1)) != 0
    }

    /// Serializes to the 6-byte wire shape (little-endian `latest`, then `bits`).
    pub fn encode(&self) -> [u8; 6] {
        let mut out = [0u8; 6];
        out[..2].copy_from_slice(&self.latest.to_le_bytes());
        out[2..].copy_from_slice(&self.bits.to_le_bytes());
        out
    }

    /// Deserializes the 6-byte wire shape. Total: every 6-byte string is a valid bitfield.
    pub fn decode(bytes: [u8; 6]) -> AckBitfield {
        AckBitfield {
            latest: u16::from_le_bytes([bytes[0], bytes[1]]),
            bits: u32::from_le_bytes([bytes[2], bytes[3], bytes[4], bytes[5]]),
        }
    }
}

/// Receive-side sequence tracker: records every received fragment sequence and produces the
/// [`AckBitfield`] to send back.
#[derive(Debug, Clone, Default)]
pub struct AckTracker {
    latest: u16,
    bits: u32,
    any: bool,
}

impl AckTracker {
    /// Records receipt of `seq`. Returns `true` when the sequence was newly recorded inside
    /// the 33-wide window, `false` for duplicates or sequences older than the window (delivery
    /// dedup does **not** rely on this — the reassembler is authoritative).
    pub fn record(&mut self, seq: u16) -> bool {
        if !self.any {
            self.any = true;
            self.latest = seq;
            self.bits = 0;
            return true;
        }
        if seq == self.latest {
            return false;
        }
        if seq_newer(seq, self.latest) {
            let shift = u32::from(seq.wrapping_sub(self.latest));
            let shifted = if shift >= 32 { 0 } else { self.bits << shift };
            let prev_bit = if shift <= 32 { 1u32 << (shift - 1) } else { 0 };
            self.bits = shifted | prev_bit;
            self.latest = seq;
            true
        } else {
            let diff = u32::from(self.latest.wrapping_sub(seq));
            if !(1..=32).contains(&diff) {
                return false;
            }
            let bit = 1u32 << (diff - 1);
            if self.bits & bit != 0 {
                return false;
            }
            self.bits |= bit;
            true
        }
    }

    /// The current acknowledgement window.
    pub fn bitfield(&self) -> AckBitfield {
        AckBitfield {
            latest: self.latest,
            bits: self.bits,
        }
    }

    /// Whether anything was ever received.
    pub fn any(&self) -> bool {
        self.any
    }
}

/// One unacknowledged fragment on the sender side.
#[derive(Debug, Clone, Copy)]
struct SentEntry {
    seq: u16,
    wire_bytes: u64,
    sent_at: SimTime,
    acked: bool,
    /// Set when the fragment was retransmitted. Its eventual ack still credits the bytes, but
    /// yields no RTT sample (Karn's algorithm): the ack cannot be matched to a particular
    /// transmission, and sampling from the first one would fold retransmit backoffs into the
    /// smoothed RTT — inflating the pacer's spacing into a positive-feedback stall.
    retransmitted: bool,
}

/// Send-side window of outstanding fragments: turns returning ack bitfields into
/// `(bytes, rtt)` samples for the congestion controller.
///
/// Entries are kept in send order; acknowledged prefixes are popped eagerly and the window is
/// bounded (oldest entries fall off), so memory stays O(window) per (connection, direction,
/// lane) regardless of traffic volume.
#[derive(Debug, Clone, Default)]
pub struct SentWindow {
    entries: VecDeque<SentEntry>,
}

/// Bound on tracked in-flight fragments per lane direction; far beyond any cwnd the
/// controllers reach, it only guards against pathological scenarios.
const SENT_WINDOW_CAP: usize = 4096;

impl SentWindow {
    /// Records a fragment handed to the wire at `sent_at`.
    pub fn on_sent(&mut self, seq: u16, wire_bytes: u64, sent_at: SimTime) {
        if self.entries.len() >= SENT_WINDOW_CAP {
            self.entries.pop_front();
        }
        self.entries.push_back(SentEntry {
            seq,
            wire_bytes,
            sent_at,
            acked: false,
            retransmitted: false,
        });
    }

    /// Marks `seq` as retransmitted, excluding its eventual ack from RTT sampling (Karn's
    /// algorithm).
    pub fn mark_retransmitted(&mut self, seq: u16) {
        if let Some(entry) = self.entries.iter_mut().find(|e| e.seq == seq) {
            entry.retransmitted = true;
        }
    }

    /// Applies a received ack bitfield, invoking `on_acked(wire_bytes, sent_at)` once per
    /// newly acknowledged fragment, then drops the acknowledged prefix. `sent_at` is `None`
    /// for fragments that were retransmitted: the bytes count, the RTT sample does not.
    pub fn on_ack(&mut self, field: &AckBitfield, mut on_acked: impl FnMut(u64, Option<SimTime>)) {
        for entry in self.entries.iter_mut() {
            if !entry.acked && field.contains(entry.seq) {
                entry.acked = true;
                on_acked(
                    entry.wire_bytes,
                    (!entry.retransmitted).then_some(entry.sent_at),
                );
            }
        }
        while self.entries.front().is_some_and(|e| e.acked) {
            self.entries.pop_front();
        }
    }

    /// Number of tracked (sent, not yet contiguously acked) fragments.
    pub fn in_flight(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_comparison_wraps() {
        assert!(seq_newer(1, 0));
        assert!(seq_newer(0, u16::MAX));
        assert!(seq_newer(100, 65500));
        assert!(!seq_newer(0, 1));
        assert!(!seq_newer(0, 0));
        assert!(!seq_newer(65500, 100));
    }

    #[test]
    fn tracker_builds_window() {
        let mut t = AckTracker::default();
        assert!(t.record(0));
        assert!(t.record(1));
        assert!(t.record(3));
        let f = t.bitfield();
        assert_eq!(f.latest, 3);
        assert!(f.contains(3));
        assert!(!f.contains(2));
        assert!(f.contains(1));
        assert!(f.contains(0));
        // Late arrival of 2 fills the hole.
        assert!(t.record(2));
        assert!(t.bitfield().contains(2));
        // Duplicates are reported as such.
        assert!(!t.record(2));
        assert!(!t.record(3));
    }

    #[test]
    fn tracker_handles_wraparound() {
        let mut t = AckTracker::default();
        assert!(t.record(u16::MAX - 1));
        assert!(t.record(u16::MAX));
        assert!(t.record(0));
        assert!(t.record(1));
        let f = t.bitfield();
        assert_eq!(f.latest, 1);
        for seq in [u16::MAX - 1, u16::MAX, 0, 1] {
            assert!(f.contains(seq), "missing {seq}");
        }
    }

    #[test]
    fn tracker_survives_large_jumps() {
        let mut t = AckTracker::default();
        assert!(t.record(0));
        assert!(t.record(1000)); // jump far beyond the 32-bit window
        let f = t.bitfield();
        assert_eq!(f.latest, 1000);
        assert!(!f.contains(0), "0 fell out of the window");
        // Too-old arrivals are rejected without panicking.
        assert!(!t.record(1));
    }

    #[test]
    fn bitfield_roundtrip() {
        let f = AckBitfield {
            latest: 0xBEEF,
            bits: 0xDEAD_1234,
        };
        assert_eq!(AckBitfield::decode(f.encode()), f);
    }

    #[test]
    fn sent_window_acks_and_drains() {
        let mut w = SentWindow::default();
        for seq in 0..4u16 {
            w.on_sent(seq, 100, SimTime::from_millis(u64::from(seq)));
        }
        assert_eq!(w.in_flight(), 4);
        // Ack 0, 1 and 3 (2 missing).
        let mut acked = Vec::new();
        let mut t = AckTracker::default();
        t.record(0);
        t.record(1);
        t.record(3);
        w.on_ack(&t.bitfield(), |bytes, sent| {
            acked.push((bytes, sent));
        });
        assert_eq!(acked.len(), 3);
        // None of these were retransmitted, so every ack carries an RTT anchor.
        assert!(acked.iter().all(|&(_, sent)| sent.is_some()));
        // 2 is still unacked, so the prefix drain stops there.
        assert_eq!(w.in_flight(), 2);
        // Re-applying the same ack produces no new samples.
        w.on_ack(&t.bitfield(), |_, _| panic!("duplicate ack sample"));
        // Acking 2 drains everything.
        t.record(2);
        w.on_ack(&t.bitfield(), |_, _| {});
        assert_eq!(w.in_flight(), 0);
    }

    #[test]
    fn retransmitted_fragments_yield_no_rtt_sample() {
        let mut w = SentWindow::default();
        w.on_sent(0, 100, SimTime::ZERO);
        w.on_sent(1, 100, SimTime::ZERO);
        w.mark_retransmitted(0);
        let mut t = AckTracker::default();
        t.record(0);
        t.record(1);
        let mut samples = Vec::new();
        w.on_ack(&t.bitfield(), |bytes, sent| samples.push((bytes, sent)));
        // Both acks credit their bytes, but only the clean one anchors an RTT.
        assert_eq!(samples.len(), 2);
        assert_eq!(samples.iter().filter(|(_, s)| s.is_some()).count(), 1);
    }

    #[test]
    fn sent_window_is_bounded() {
        let mut w = SentWindow::default();
        for i in 0..(SENT_WINDOW_CAP + 10) {
            w.on_sent(i as u16, 1, SimTime::ZERO);
        }
        assert_eq!(w.in_flight(), SENT_WINDOW_CAP);
    }
}
