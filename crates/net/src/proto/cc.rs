//! Pluggable congestion control, applied as **pacing**.
//!
//! The emulated transport has no send queue to block — `Endpoint::send` always accepts — so a
//! congestion controller shapes traffic by spacing fragment releases instead: each fragment's
//! release is delayed until `pace_until`, which advances by
//! [`send_spacing`](CongestionController::send_spacing) per fragment. A controller whose
//! spacing is always zero releases every fragment immediately, reproducing the historical
//! behaviour exactly; that is the [`Legacy`] controller, kept wire-identical for the
//! byte-identity pins. [`Aimd`] implements TCP-style slow start and additive increase /
//! multiplicative decrease over a smoothed RTT, pacing at `cwnd / srtt`.

use p2plab_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Which congestion controller a connection direction uses (the configuration-level name;
/// instantiated as a [`CcState`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CcKind {
    /// Fixed window, zero pacing: wire-identical to the pre-protocol transport.
    Legacy,
    /// Slow start + additive increase / multiplicative decrease, applied as pacing.
    Aimd,
}

impl CcKind {
    /// Parses the DSL name (`"legacy"` / `"aimd"`).
    pub fn parse(name: &str) -> Option<CcKind> {
        match name {
            "legacy" => Some(CcKind::Legacy),
            "aimd" => Some(CcKind::Aimd),
            _ => None,
        }
    }

    /// The DSL name.
    pub fn name(self) -> &'static str {
        match self {
            CcKind::Legacy => "legacy",
            CcKind::Aimd => "aimd",
        }
    }
}

/// A per-direction congestion controller. Implementations react to transmissions, returning
/// acknowledgements and losses, and translate their window into inter-fragment spacing.
pub trait CongestionController {
    /// A fragment of `wire_bytes` was released to the wire.
    fn on_send(&mut self, wire_bytes: u64);
    /// An acknowledgement covered `wire_bytes`. `rtt` is `None` when the fragment was
    /// retransmitted (Karn's algorithm: the bytes grow the window, but an ack that cannot be
    /// matched to a single transmission yields no RTT sample).
    fn on_ack(&mut self, wire_bytes: u64, rtt: Option<SimDuration>);
    /// A fragment was lost (drop-triggered, the sim's omniscient loss signal).
    fn on_loss(&mut self);
    /// Spacing to insert after releasing a fragment of `wire_bytes`.
    fn send_spacing(&mut self, wire_bytes: u64) -> SimDuration;
    /// The current congestion window in bytes (for metrics).
    fn cwnd_bytes(&self) -> u64;
}

/// The fixed-window controller: never paces, never reacts. Wire-identical to the transport
/// before congestion control existed — the fig10 byte-identity pin runs on this path.
#[derive(Debug, Clone, Copy, Default)]
pub struct Legacy;

/// The legacy controller's nominal window, reported for metrics (effectively unbounded: the
/// historical transport pushed every frame to the pipes immediately).
const LEGACY_CWND_BYTES: u64 = u64::MAX;

impl CongestionController for Legacy {
    fn on_send(&mut self, _wire_bytes: u64) {}
    fn on_ack(&mut self, _wire_bytes: u64, _rtt: Option<SimDuration>) {}
    fn on_loss(&mut self) {}
    fn send_spacing(&mut self, _wire_bytes: u64) -> SimDuration {
        SimDuration::ZERO
    }
    fn cwnd_bytes(&self) -> u64 {
        LEGACY_CWND_BYTES
    }
}

/// TCP-style AIMD over a smoothed RTT, applied as pacing at rate `cwnd / srtt`.
///
/// * slow start: `cwnd += acked_bytes` per ack while below `ssthresh`;
/// * congestion avoidance: `cwnd += mss * acked_bytes / cwnd` (≈ one MSS per RTT);
/// * loss: `ssthresh = cwnd / 2`, `cwnd = ssthresh` (both floored at `2 * mss`); further
///   losses are ignored until a full window of acknowledgements arrives, so a burst of
///   consecutive drops counts as **one** congestion event (NewReno-style);
/// * `srtt` is the classic `7/8 srtt + 1/8 sample` EWMA.
#[derive(Debug, Clone, Copy)]
pub struct Aimd {
    cwnd: u64,
    ssthresh: u64,
    mss: u64,
    srtt: SimDuration,
    /// Bytes of acknowledgements still to arrive before another loss may shrink the window
    /// (NewReno-style loss-event coalescing). A Gilbert–Elliott burst drops many consecutive
    /// fragments; halving per fragment would collapse the window to its floor on every burst,
    /// so losses within one window of acks after a halving count as the same congestion event.
    recovery_left: u64,
}

/// Segment size the AIMD controller grows by in congestion avoidance.
const AIMD_MSS: u64 = 1200;
/// Initial window: 10 segments (RFC 6928's modern initial window).
const AIMD_INITIAL_WINDOW: u64 = 10 * AIMD_MSS;
/// Window cap, so slow start over a fat emulated link cannot overflow the arithmetic.
const AIMD_MAX_WINDOW: u64 = 64 * 1024 * 1024;
/// Initial smoothed RTT before the first sample.
const AIMD_INITIAL_SRTT: SimDuration = SimDuration::from_millis(200);

impl Default for Aimd {
    fn default() -> Self {
        Aimd {
            cwnd: AIMD_INITIAL_WINDOW,
            ssthresh: AIMD_MAX_WINDOW,
            mss: AIMD_MSS,
            srtt: AIMD_INITIAL_SRTT,
            recovery_left: 0,
        }
    }
}

impl CongestionController for Aimd {
    fn on_send(&mut self, _wire_bytes: u64) {}

    fn on_ack(&mut self, wire_bytes: u64, rtt: Option<SimDuration>) {
        self.recovery_left = self.recovery_left.saturating_sub(wire_bytes);
        if let Some(rtt) = rtt {
            self.srtt = SimDuration::from_nanos(
                (self.srtt.as_nanos() / 8).saturating_mul(7) + rtt.as_nanos() / 8,
            );
        }
        if self.cwnd < self.ssthresh {
            self.cwnd = (self.cwnd + wire_bytes).min(AIMD_MAX_WINDOW);
        } else {
            let growth = (self.mss.saturating_mul(wire_bytes) / self.cwnd).max(1);
            self.cwnd = (self.cwnd + growth).min(AIMD_MAX_WINDOW);
        }
    }

    fn on_loss(&mut self) {
        if self.recovery_left > 0 {
            // Still recovering from the previous halving: this loss belongs to the same burst.
            return;
        }
        self.ssthresh = (self.cwnd / 2).max(2 * self.mss);
        self.cwnd = self.ssthresh;
        self.recovery_left = self.cwnd;
    }

    fn send_spacing(&mut self, wire_bytes: u64) -> SimDuration {
        // Pace at cwnd / srtt: the spacing of a fragment is the srtt share its bytes occupy in
        // the window.
        SimDuration::from_nanos(
            (u128::from(wire_bytes) * u128::from(self.srtt.as_nanos())
                / u128::from(self.cwnd.max(1)))
            .try_into()
            .unwrap_or(u64::MAX),
        )
    }

    fn cwnd_bytes(&self) -> u64 {
        self.cwnd
    }
}

/// The concrete controller state stored per connection direction (an enum rather than a boxed
/// trait object so the network side table stays `Clone` and allocation-free).
#[derive(Debug, Clone, Copy)]
pub enum CcState {
    /// See [`Legacy`].
    Legacy(Legacy),
    /// See [`Aimd`].
    Aimd(Aimd),
}

impl CcState {
    /// Instantiates the controller named by `kind`.
    pub fn new(kind: CcKind) -> CcState {
        match kind {
            CcKind::Legacy => CcState::Legacy(Legacy),
            CcKind::Aimd => CcState::Aimd(Aimd::default()),
        }
    }

    fn dynamic(&mut self) -> &mut dyn CongestionController {
        match self {
            CcState::Legacy(c) => c,
            CcState::Aimd(c) => c,
        }
    }
}

impl CongestionController for CcState {
    fn on_send(&mut self, wire_bytes: u64) {
        self.dynamic().on_send(wire_bytes);
    }
    fn on_ack(&mut self, wire_bytes: u64, rtt: Option<SimDuration>) {
        self.dynamic().on_ack(wire_bytes, rtt);
    }
    fn on_loss(&mut self) {
        self.dynamic().on_loss();
    }
    fn send_spacing(&mut self, wire_bytes: u64) -> SimDuration {
        self.dynamic().send_spacing(wire_bytes)
    }
    fn cwnd_bytes(&self) -> u64 {
        match self {
            CcState::Legacy(c) => c.cwnd_bytes(),
            CcState::Aimd(c) => c.cwnd_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_never_paces() {
        let mut c = Legacy;
        c.on_send(10_000);
        c.on_loss();
        c.on_ack(10_000, Some(SimDuration::from_millis(50)));
        assert_eq!(c.send_spacing(1_000_000), SimDuration::ZERO);
    }

    #[test]
    fn aimd_slow_start_doubles_per_rtt() {
        let mut c = Aimd::default();
        let w0 = c.cwnd_bytes();
        // Acking a full window in slow start doubles it.
        c.on_ack(w0, Some(SimDuration::from_millis(100)));
        assert_eq!(c.cwnd_bytes(), 2 * w0);
    }

    #[test]
    fn aimd_halves_on_loss_and_grows_linearly_after() {
        let mut c = Aimd::default();
        for _ in 0..6 {
            c.on_ack(c.cwnd_bytes(), Some(SimDuration::from_millis(100)));
        }
        let before = c.cwnd_bytes();
        c.on_loss();
        assert_eq!(c.cwnd_bytes(), before / 2);
        // Now in congestion avoidance: acking a full window adds about one MSS.
        let w = c.cwnd_bytes();
        c.on_ack(w, Some(SimDuration::from_millis(100)));
        let growth = c.cwnd_bytes() - w;
        assert!(
            (AIMD_MSS / 2..=2 * AIMD_MSS).contains(&growth),
            "growth={growth}"
        );
    }

    #[test]
    fn aimd_loss_floor() {
        let mut c = Aimd::default();
        for _ in 0..20 {
            // A window of acks ends each recovery episode, so every loss is its own event.
            c.on_ack(c.cwnd_bytes(), None);
            c.on_loss();
        }
        assert_eq!(c.cwnd_bytes(), 2 * AIMD_MSS);
    }

    #[test]
    fn consecutive_losses_are_one_congestion_event() {
        let mut c = Aimd::default();
        let w = c.cwnd_bytes();
        // A Gilbert–Elliott burst: a dozen drop signals before any ack arrives.
        for _ in 0..12 {
            c.on_loss();
        }
        assert_eq!(c.cwnd_bytes(), w / 2, "burst must halve exactly once");
        // After a full window of acks drains the recovery, the next loss halves again.
        c.on_ack(c.cwnd_bytes(), None);
        let grown = c.cwnd_bytes();
        c.on_loss();
        assert!(c.cwnd_bytes() < grown);
    }

    #[test]
    fn aimd_pacing_tracks_rate() {
        let mut c = Aimd::default();
        // cwnd = 12000 bytes, srtt = 200 ms -> 1200 bytes should take ~20 ms.
        let spacing = c.send_spacing(1200);
        assert_eq!(spacing, SimDuration::from_millis(20));
        // A bigger window paces faster.
        c.on_ack(c.cwnd_bytes(), Some(SimDuration::from_millis(200)));
        assert!(c.send_spacing(1200) < spacing);
    }

    #[test]
    fn srtt_converges_toward_samples() {
        let mut c = Aimd::default();
        for _ in 0..100 {
            c.on_ack(1, Some(SimDuration::from_millis(50)));
        }
        let spacing = c.send_spacing(c.cwnd_bytes());
        // Spacing for a full window equals srtt; after many 50 ms samples it must be near 50 ms.
        assert!(
            spacing <= SimDuration::from_millis(55),
            "srtt failed to converge: {spacing:?}"
        );
    }

    #[test]
    fn sampleless_acks_grow_the_window_without_moving_srtt() {
        let mut c = Aimd::default();
        let spacing_before = c.send_spacing(1200);
        let w = c.cwnd_bytes();
        // A Karn-excluded ack (retransmitted fragment): bytes credited, srtt untouched.
        c.on_ack(1200, None);
        assert_eq!(c.cwnd_bytes(), w + 1200);
        // cwnd grew, so spacing shrinks — but srtt itself did not absorb any sample, which a
        // huge Some() sample would have shown immediately.
        assert!(c.send_spacing(1200) <= spacing_before);
        let mut poisoned = Aimd::default();
        poisoned.on_ack(1200, Some(SimDuration::from_secs(60)));
        assert!(poisoned.send_spacing(1200) > c.send_spacing(1200));
    }

    #[test]
    fn state_enum_dispatches() {
        let mut s = CcState::new(CcKind::Aimd);
        let w = s.cwnd_bytes();
        s.on_loss();
        assert!(s.cwnd_bytes() < w);
        let mut l = CcState::new(CcKind::Legacy);
        assert_eq!(l.send_spacing(1_000_000), SimDuration::ZERO);
        assert_eq!(CcKind::parse("aimd"), Some(CcKind::Aimd));
        assert_eq!(CcKind::parse("legacy"), Some(CcKind::Legacy));
        assert_eq!(CcKind::parse("bbr"), None);
        assert_eq!(CcKind::Aimd.name(), "aimd");
    }
}
