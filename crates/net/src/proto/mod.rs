//! The protocol-depth layer: fragmentation, ack-bitfield reliability and congestion control.
//!
//! Real transports do three things the paper's whole-message lanes do not: they **fragment**
//! application messages to a maximum transmission unit, they **acknowledge** received fragments
//! with sequence-number bitfields so the sender can retransmit selectively, and they **adapt
//! their send rate** to observed loss and delay. This module adds all three underneath the
//! existing [`Endpoint`](crate::endpoint::Endpoint) lanes:
//!
//! * [`frag`] — MTU fragmentation planning and the receive-side [`Reassembler`] with
//!   per-message timeouts and at-most-once completion;
//! * [`ack`] — wrapping 16-bit sequence numbers, the receive-side [`AckTracker`] producing
//!   [`AckBitfield`]s, and the send-side [`SentWindow`] that turns returning acks into RTT
//!   samples;
//! * [`cc`] — the pluggable [`CongestionController`] trait with two implementations: [`Legacy`]
//!   (a fixed window that never paces — **wire-identical** to the pre-protocol data plane) and
//!   [`Aimd`] (slow start + additive increase / multiplicative decrease, applied as pacing);
//! * [`condition`] — composable link conditioners (jitter, reordering, duplication and
//!   Gilbert–Elliott burst loss) stacked on [`Pipe`](crate::pipe::Pipe)s by
//!   [`LinkCondition`].
//!
//! The layer is **off by default**: with [`TransportConfig::default`] (no MTU, `Legacy`
//! congestion control) every send takes the historical single-frame path, drawing the same
//! random numbers and scheduling the same events — the fig10 byte-identity pin stays green.
//! Setting an MTU or choosing a non-legacy controller activates the fragment/ack wire path for
//! connection lanes (connectionless datagrams never fragment).

pub mod ack;
pub mod cc;
pub mod condition;
pub mod frag;

pub use ack::{seq_newer, AckBitfield, AckTracker, SentWindow};
pub use cc::{Aimd, CcKind, CcState, CongestionController, Legacy};
pub use condition::{BurstLoss, LinkCondition};
pub use frag::{
    fragment_count, fragment_size, FragHeader, FragOutcome, Reassembler, FRAG_HEADER_BYTES,
};

use crate::lane::LaneKind;
use p2plab_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Protocol-depth configuration of the transport, carried inside
/// [`NetworkConfig`](crate::network::NetworkConfig).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransportConfig {
    /// Maximum fragment payload in bytes. `None` disables fragmentation (whole messages travel
    /// as one frame, the historical behaviour). Must be at least
    /// `max_message_bytes / u16::MAX` so fragment counts fit the 16-bit wire header; the
    /// scenario DSL enforces a floor of 64 bytes.
    pub mtu: Option<u64>,
    /// The congestion controller applied per connection direction.
    pub congestion: CcKind,
    /// How long the receive side keeps an incomplete **unreliable-lane** message without any
    /// new fragment arriving before discarding it (and counting a `reassembly_timeout`).
    /// Reliable-lane assemblies are exempt: their fragments are retransmitted until they
    /// arrive, and if the sender abandons a fragment (attempts exhausted) the assembly is
    /// killed at that moment instead — an idle reaper would discard already-acked fragments
    /// that are never resent, leaving the message permanently undeliverable.
    pub reassembly_timeout: SimDuration,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            mtu: None,
            congestion: CcKind::Legacy,
            reassembly_timeout: SimDuration::from_secs(30),
        }
    }
}

impl TransportConfig {
    /// Whether the protocol-depth wire path is active. With the default configuration (no MTU,
    /// legacy congestion control) sends take the historical single-frame path unchanged.
    pub fn active(&self) -> bool {
        self.mtu.is_some() || self.congestion != CcKind::Legacy
    }
}

/// Per-lane sender-side protocol state for one flow direction.
#[derive(Debug, Clone, Default)]
pub struct LaneSend {
    /// Next wire sequence number to assign.
    pub next_seq: u16,
    /// Next message (reassembly) id to assign.
    pub next_msg: u16,
    /// Outstanding fragments awaiting acknowledgement (reliable lanes only).
    pub window: SentWindow,
}

/// Per-lane receiver-side protocol state for one flow direction.
#[derive(Debug, Clone, Default)]
pub struct LaneRecv {
    /// Received-sequence tracker producing ack bitfields.
    pub ack: AckTracker,
    /// Fragment reassembly state.
    pub assembly: Reassembler,
}

/// Send + receive protocol state of one lane in one flow direction.
#[derive(Debug, Clone, Default)]
pub struct LaneProto {
    /// Sender-side state (owned by the node transmitting in this direction).
    pub send: LaneSend,
    /// Receiver-side state (owned by the node receiving in this direction).
    pub recv: LaneRecv,
}

/// Protocol state of one **flow direction** of a connection: the sender's pacing clock and
/// congestion controller plus per-lane sequence/window/reassembly state.
#[derive(Debug, Clone)]
pub struct ProtoHalf {
    /// The sender may not release the next fragment before this time (pacing under the
    /// congestion controller; stays at [`SimTime::ZERO`] under [`Legacy`]).
    pub pace_until: SimTime,
    /// The congestion controller of this direction.
    pub cc: CcState,
    /// Per-lane protocol state, indexed by [`LaneKind::index`].
    pub lanes: [LaneProto; 3],
}

impl ProtoHalf {
    fn new(kind: CcKind) -> ProtoHalf {
        ProtoHalf {
            pace_until: SimTime::ZERO,
            cc: CcState::new(kind),
            lanes: Default::default(),
        }
    }

    /// The lane state for `lane`.
    pub fn lane_mut(&mut self, lane: LaneKind) -> &mut LaneProto {
        &mut self.lanes[lane.index()]
    }
}

/// Protocol state of one connection: one [`ProtoHalf`] per flow direction.
///
/// Direction `0` is client → server, direction `1` is server → client (see
/// [`flow_dir`]). The state lives in a side table on the
/// [`Network`](crate::network::Network) — the simulation is omniscient, so sender and receiver
/// state of one direction can share a record without modelling any extra wire traffic.
#[derive(Debug, Clone)]
pub struct ProtoConn {
    /// The two flow directions.
    pub halves: [ProtoHalf; 2],
}

impl ProtoConn {
    /// Fresh protocol state with both directions using the given congestion controller.
    pub fn new(kind: CcKind) -> ProtoConn {
        ProtoConn {
            halves: [ProtoHalf::new(kind), ProtoHalf::new(kind)],
        }
    }
}

/// The flow-direction index of data sent by `sender_is_client` (0 = client → server).
pub fn flow_dir(sender_is_client: bool) -> usize {
    usize::from(!sender_is_client)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_inactive() {
        let cfg = TransportConfig::default();
        assert!(!cfg.active());
        assert!(TransportConfig {
            mtu: Some(1500),
            ..cfg
        }
        .active());
        assert!(TransportConfig {
            congestion: CcKind::Aimd,
            ..cfg
        }
        .active());
    }

    #[test]
    fn flow_dir_convention() {
        assert_eq!(flow_dir(true), 0);
        assert_eq!(flow_dir(false), 1);
    }

    #[test]
    fn proto_conn_initial_state() {
        let mut p = ProtoConn::new(CcKind::Aimd);
        assert_eq!(p.halves[0].pace_until, SimTime::ZERO);
        let lane = p.halves[0].lane_mut(LaneKind::ReliableOrdered);
        assert_eq!(lane.send.next_seq, 0);
        assert_eq!(lane.send.next_msg, 0);
    }
}
