//! MTU fragmentation and receive-side reassembly.
//!
//! A message larger than the configured MTU is split into `ceil(size / mtu)` fragments, each
//! carrying an 8-byte fragment header ([`FragHeader`]: message id, fragment index, fragment
//! count, wire sequence) on top of its lane framing. The receive side tracks per-message
//! bitmasks ([`Reassembler`]) and reports completion exactly once per message id — duplicate
//! fragments (conditioner duplication, retransmit races) and malformed headers are ignored, so
//! the layer never delivers a message it was not sent and never delivers one twice.
//!
//! Incomplete **unreliable-lane** messages are discarded after a configurable idle timeout
//! ([`TransportConfig::reassembly_timeout`](super::TransportConfig)): the transport arms a
//! timer on [`FragOutcome::Pending`]`{ first: true }` carrying a [`progress`](Reassembler::progress)
//! snapshot, and when it fires it re-arms instead of expiring if any fragment arrived in the
//! meantime. Reliable-lane assemblies are exempt from the reaper — their fragments keep being
//! retransmitted until they arrive, and when the sender abandons a fragment (attempts
//! exhausted) the whole message is [`abandon`](Reassembler::abandon)ed at once: partial state
//! dropped, stragglers ignored.

use p2plab_sim::{FxHashMap, FxHashSet};

/// Bytes of the per-fragment header carried on the wire on top of the lane framing:
/// message id (2) + index (2) + count (2) + wire sequence (2).
pub const FRAG_HEADER_BYTES: u64 = 8;

/// The fragment header as serialized on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragHeader {
    /// Message (reassembly) id, wrapping per (connection, direction, lane).
    pub msg: u16,
    /// Index of this fragment within the message, `0..count`.
    pub index: u16,
    /// Total number of fragments of the message.
    pub count: u16,
    /// Wire sequence number (the unit of acknowledgement).
    pub seq: u16,
}

impl FragHeader {
    /// Serializes to the 8-byte wire shape (little-endian fields).
    pub fn encode(&self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[0..2].copy_from_slice(&self.msg.to_le_bytes());
        out[2..4].copy_from_slice(&self.index.to_le_bytes());
        out[4..6].copy_from_slice(&self.count.to_le_bytes());
        out[6..8].copy_from_slice(&self.seq.to_le_bytes());
        out
    }

    /// Deserializes the 8-byte wire shape. Total: every 8-byte string decodes (validity —
    /// `index < count`, `count > 0` — is checked by the [`Reassembler`], as a real receiver
    /// must).
    pub fn decode(bytes: [u8; 8]) -> FragHeader {
        FragHeader {
            msg: u16::from_le_bytes([bytes[0], bytes[1]]),
            index: u16::from_le_bytes([bytes[2], bytes[3]]),
            count: u16::from_le_bytes([bytes[4], bytes[5]]),
            seq: u16::from_le_bytes([bytes[6], bytes[7]]),
        }
    }
}

/// Number of fragments a message of `size` bytes needs at the given MTU (at least 1 — empty
/// messages still travel as one fragment).
///
/// # Panics
///
/// Panics when the count would not fit the 16-bit wire header; the transport's
/// `max_message_bytes` bound together with the DSL's MTU floor makes that unreachable in
/// configured scenarios.
pub fn fragment_count(size: u64, mtu: u64) -> u16 {
    let mtu = mtu.max(1);
    let count = size.div_ceil(mtu).max(1);
    u16::try_from(count).expect("message/MTU ratio exceeds the 16-bit fragment count")
}

/// The payload size of fragment `index` of a `size`-byte message split at `mtu`.
pub fn fragment_size(size: u64, mtu: u64, index: u16, count: u16) -> u64 {
    let mtu = mtu.max(1);
    if u32::from(index) + 1 < u32::from(count) {
        mtu
    } else {
        size - mtu * u64::from(count - 1)
    }
}

/// Result of offering one fragment to the [`Reassembler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragOutcome {
    /// The fragment was accepted but the message is still incomplete. `first` is set when this
    /// fragment opened a fresh reassembly entry — the caller schedules the reassembly timeout.
    Pending {
        /// Whether this fragment created the reassembly entry.
        first: bool,
    },
    /// This fragment completed the message: deliver it (exactly once).
    Complete,
    /// Duplicate, stale or malformed fragment; ignored.
    Ignored,
}

/// In-progress reassembly of one message.
#[derive(Debug, Clone)]
struct Entry {
    count: u16,
    received: u16,
    /// Bitmask over fragment indices, in 64-bit blocks.
    mask: Vec<u64>,
}

/// Receive-side fragment reassembly for one (connection, direction, lane).
///
/// Tracks per-message bitmasks and a window of completed message ids so duplicates of an
/// already-delivered message are ignored. Completed ids are forgotten half a sequence space
/// (32768 messages) later — long after any duplicate can still be in flight.
#[derive(Debug, Clone, Default)]
pub struct Reassembler {
    entries: FxHashMap<u16, Entry>,
    completed: FxHashSet<u16>,
}

impl Reassembler {
    /// Offers fragment `index` of message `msg` (which claims `count` fragments total).
    /// Malformed (`count == 0`, `index >= count`), duplicate and inconsistent fragments are
    /// [`FragOutcome::Ignored`].
    pub fn accept(&mut self, msg: u16, index: u16, count: u16) -> FragOutcome {
        if count == 0 || index >= count || self.completed.contains(&msg) {
            return FragOutcome::Ignored;
        }
        if count == 1 {
            self.finish(msg);
            return FragOutcome::Complete;
        }
        let (entry, first) = match self.entries.get_mut(&msg) {
            Some(e) => (e, false),
            None => (
                self.entries.entry(msg).or_insert_with(|| Entry {
                    count,
                    received: 0,
                    mask: vec![0; usize::from(count).div_ceil(64)],
                }),
                true,
            ),
        };
        if entry.count != count {
            // A fragment disagreeing with the entry's count is corrupt; keep the entry.
            return FragOutcome::Ignored;
        }
        let (block, bit) = (usize::from(index) / 64, u64::from(index) % 64);
        if entry.mask[block] & (1u64 << bit) != 0 {
            return FragOutcome::Ignored;
        }
        entry.mask[block] |= 1u64 << bit;
        entry.received += 1;
        if entry.received == entry.count {
            self.entries.remove(&msg);
            self.finish(msg);
            FragOutcome::Complete
        } else {
            FragOutcome::Pending { first }
        }
    }

    /// Expires the reassembly of `msg`: drops its entry if still incomplete. Returns whether
    /// an incomplete entry was discarded (the caller counts a reassembly timeout).
    pub fn expire(&mut self, msg: u16) -> bool {
        self.entries.remove(&msg).is_some()
    }

    /// Marks `msg` as dead: drops its partial assembly and ignores every future fragment of
    /// it. Called when the sender abandons a fragment (retransmission attempts exhausted) — the
    /// message can never complete, and without this the still-retrying sibling fragments would
    /// reopen a permanently incomplete entry. Returns whether the message was newly killed
    /// (`false` when it already completed or was already abandoned), so the caller counts each
    /// abandoned message exactly once.
    pub fn abandon(&mut self, msg: u16) -> bool {
        if self.completed.contains(&msg) {
            return false;
        }
        self.entries.remove(&msg);
        self.finish(msg);
        true
    }

    /// Number of messages currently being reassembled.
    pub fn pending(&self) -> usize {
        self.entries.len()
    }

    /// Fragments received so far for the in-progress message `msg` (`None` once completed,
    /// expired or never seen). The timeout machinery compares snapshots of this to tell a
    /// stalled reassembly from one that is still receiving retransmitted fragments.
    pub fn progress(&self, msg: u16) -> Option<u16> {
        self.entries.get(&msg).map(|e| e.received)
    }

    /// Whether `msg` already completed (and its duplicates are being ignored).
    pub fn is_completed(&self, msg: u16) -> bool {
        self.completed.contains(&msg)
    }

    fn finish(&mut self, msg: u16) {
        self.completed.insert(msg);
        // Forget the id opposite in the sequence space: a completed id is remembered for 32768
        // message generations, bounding the set while leaving no realistic reuse hazard.
        self.completed.remove(&msg.wrapping_add(0x8000));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = FragHeader {
            msg: 7,
            index: 2,
            count: 9,
            seq: 0xFFFE,
        };
        assert_eq!(FragHeader::decode(h.encode()), h);
    }

    #[test]
    fn fragment_plan_covers_message() {
        for (size, mtu) in [
            (0u64, 1500u64),
            (1, 1500),
            (1500, 1500),
            (1501, 1500),
            (64 * 1024, 1200),
        ] {
            let count = fragment_count(size, mtu);
            let total: u64 = (0..count).map(|i| fragment_size(size, mtu, i, count)).sum();
            assert_eq!(total, size, "size={size} mtu={mtu} count={count}");
            for i in 0..count {
                assert!(fragment_size(size, mtu, i, count) <= mtu);
            }
        }
        assert_eq!(fragment_count(0, 1500), 1);
        assert_eq!(fragment_count(3000, 1500), 2);
        assert_eq!(fragment_count(3001, 1500), 3);
    }

    #[test]
    fn reassembly_completes_once() {
        let mut r = Reassembler::default();
        assert_eq!(r.accept(5, 0, 3), FragOutcome::Pending { first: true });
        assert_eq!(r.accept(5, 2, 3), FragOutcome::Pending { first: false });
        assert_eq!(r.accept(5, 1, 3), FragOutcome::Complete);
        // Any further fragment of the completed message is ignored.
        assert_eq!(r.accept(5, 0, 3), FragOutcome::Ignored);
        assert_eq!(r.accept(5, 1, 3), FragOutcome::Ignored);
        assert!(r.is_completed(5));
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn single_fragment_messages_short_circuit() {
        let mut r = Reassembler::default();
        assert_eq!(r.accept(1, 0, 1), FragOutcome::Complete);
        assert_eq!(r.accept(1, 0, 1), FragOutcome::Ignored);
    }

    #[test]
    fn malformed_fragments_ignored() {
        let mut r = Reassembler::default();
        assert_eq!(r.accept(1, 0, 0), FragOutcome::Ignored);
        assert_eq!(r.accept(1, 3, 3), FragOutcome::Ignored);
        assert_eq!(r.accept(1, u16::MAX, 4), FragOutcome::Ignored);
        // Count mismatch against an open entry.
        assert_eq!(r.accept(2, 0, 4), FragOutcome::Pending { first: true });
        assert_eq!(r.accept(2, 1, 5), FragOutcome::Ignored);
        assert_eq!(r.accept(2, 1, 4), FragOutcome::Pending { first: false });
    }

    #[test]
    fn duplicate_fragment_ignored() {
        let mut r = Reassembler::default();
        assert_eq!(r.accept(9, 0, 2), FragOutcome::Pending { first: true });
        assert_eq!(r.accept(9, 0, 2), FragOutcome::Ignored);
        assert_eq!(r.accept(9, 1, 2), FragOutcome::Complete);
    }

    #[test]
    fn abandoned_messages_ignore_stragglers() {
        let mut r = Reassembler::default();
        r.accept(4, 0, 3);
        assert!(r.abandon(4));
        assert!(!r.abandon(4), "second abandonment is not newly killed");
        // Late sibling fragments must not reopen the dead message.
        assert_eq!(r.accept(4, 1, 3), FragOutcome::Ignored);
        assert_eq!(r.accept(4, 2, 3), FragOutcome::Ignored);
        assert_eq!(r.pending(), 0);
        // Abandoning a message that already completed reports nothing to count.
        assert_eq!(r.accept(9, 0, 1), FragOutcome::Complete);
        assert!(!r.abandon(9));
    }

    #[test]
    fn expiry_discards_incomplete_entries() {
        let mut r = Reassembler::default();
        r.accept(3, 0, 2);
        assert!(r.expire(3));
        assert!(!r.expire(3), "double expiry is a no-op");
        // A straggler reopens the entry (and would get a fresh timeout via first=true).
        assert_eq!(r.accept(3, 1, 2), FragOutcome::Pending { first: true });
        assert_eq!(r.accept(3, 0, 2), FragOutcome::Complete);
        // Expiring a completed message is a no-op.
        assert!(!r.expire(3));
    }

    #[test]
    fn completed_window_is_bounded() {
        let mut r = Reassembler::default();
        // Complete 40000 single-fragment messages with wrapping ids: the completed set must
        // stay at or below half the sequence space.
        for m in 0..40_000u32 {
            assert_eq!(r.accept(m as u16, 0, 1), FragOutcome::Complete);
        }
        assert!(r.completed.len() <= 0x8000);
    }

    #[test]
    fn wide_messages_use_multiple_mask_blocks() {
        let mut r = Reassembler::default();
        let count = 130u16;
        for i in 0..count - 1 {
            assert!(matches!(r.accept(0, i, count), FragOutcome::Pending { .. }));
        }
        assert_eq!(r.accept(0, count - 1, count), FragOutcome::Complete);
    }
}
