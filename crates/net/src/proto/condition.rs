//! Composable link conditioners: jitter, reordering, duplication and burst loss.
//!
//! A [`LinkCondition`] describes hostile-network behaviour layered on top of a pipe's base
//! model (bandwidth, delay, uniform loss). The pipe applies it per packet, in a fixed order so
//! random-number consumption is deterministic:
//!
//! 1. **burst loss** — a two-state Gilbert–Elliott chain ([`BurstLoss`]): the link flips
//!    between a good state (only the base uniform loss applies) and a bad state where packets
//!    drop with high probability, producing the correlated loss runs real links show;
//! 2. **jitter** — a uniform random addition to the propagation delay;
//! 3. **reordering** — with the configured probability a packet is held for an extra fixed
//!    delay, letting later packets overtake it;
//! 4. **duplication** — with the configured probability the pipe emits a second copy (charged
//!    a second serialization slot, so duplicates consume bandwidth).
//!
//! A pipe with no conditioner draws no extra random numbers — the default path stays
//! byte-identical.

use p2plab_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// Two-state Gilbert–Elliott burst-loss model.
///
/// Each packet first advances the chain (good → bad with probability `enter`, bad → good with
/// probability `exit`), then, when in the bad state, drops with probability `loss`. Expected
/// bad-run length is `1 / exit` packets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstLoss {
    /// Probability of entering the bad state, per packet in the good state.
    pub enter: f64,
    /// Probability of leaving the bad state, per packet in the bad state.
    pub exit: f64,
    /// Packet loss probability while in the bad state.
    pub loss: f64,
}

impl BurstLoss {
    /// A burst-loss model; probabilities must be in `[0, 1]`.
    pub fn new(enter: f64, exit: f64, loss: f64) -> BurstLoss {
        for (name, p) in [("enter", enter), ("exit", exit), ("loss", loss)] {
            assert!((0.0..=1.0).contains(&p), "burst {name} must be in [0,1]");
        }
        BurstLoss { enter, exit, loss }
    }

    /// Advances the chain state (`bad`) for one packet, then samples whether that packet is
    /// lost to the burst.
    pub fn step(&self, bad: &mut bool, rng: &mut SimRng) -> bool {
        if *bad {
            if rng.chance(self.exit) {
                *bad = false;
            }
        } else if rng.chance(self.enter) {
            *bad = true;
        }
        *bad && rng.chance(self.loss)
    }
}

/// A composable link conditioner. [`LinkCondition::none`] (the `Default`) is inert: every rate
/// zero, no burst model, and — because the pipe checks before drawing — zero extra RNG draws.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkCondition {
    /// Uniform random addition to the propagation delay, drawn per packet from
    /// `[0, jitter]`.
    pub jitter: SimDuration,
    /// Probability that a packet is held back for `reorder_delay` (letting later packets
    /// overtake it).
    pub reorder_rate: f64,
    /// Extra delay applied to reordered packets.
    pub reorder_delay: SimDuration,
    /// Probability that a packet is duplicated (the copy is charged its own serialization).
    pub duplicate_rate: f64,
    /// Gilbert–Elliott burst loss, if any.
    pub burst: Option<BurstLoss>,
}

impl LinkCondition {
    /// The inert conditioner.
    pub fn none() -> LinkCondition {
        LinkCondition {
            jitter: SimDuration::ZERO,
            reorder_rate: 0.0,
            reorder_delay: SimDuration::ZERO,
            duplicate_rate: 0.0,
            burst: None,
        }
    }

    /// Adds delay jitter.
    pub fn with_jitter(mut self, jitter: SimDuration) -> LinkCondition {
        self.jitter = jitter;
        self
    }

    /// Adds probabilistic reordering (`rate` in `[0, 1]`).
    pub fn with_reorder(mut self, rate: f64, delay: SimDuration) -> LinkCondition {
        assert!((0.0..=1.0).contains(&rate), "reorder rate must be in [0,1]");
        self.reorder_rate = rate;
        self.reorder_delay = delay;
        self
    }

    /// Adds probabilistic duplication (`rate` in `[0, 1]`).
    pub fn with_duplication(mut self, rate: f64) -> LinkCondition {
        assert!(
            (0.0..=1.0).contains(&rate),
            "duplicate rate must be in [0,1]"
        );
        self.duplicate_rate = rate;
        self
    }

    /// Adds Gilbert–Elliott burst loss.
    pub fn with_burst(mut self, burst: BurstLoss) -> LinkCondition {
        self.burst = Some(burst);
        self
    }

    /// Whether the conditioner does nothing (and can be dropped entirely).
    pub fn is_noop(&self) -> bool {
        self.jitter.is_zero()
            && self.reorder_rate == 0.0
            && self.duplicate_rate == 0.0
            && self.burst.is_none()
    }

    /// Samples the extra latency (jitter + reordering hold-back) for one packet.
    pub fn extra_latency(&self, rng: &mut SimRng) -> SimDuration {
        let mut extra = SimDuration::ZERO;
        if !self.jitter.is_zero() {
            extra += SimDuration::from_nanos(rng.gen_range(0..=self.jitter.as_nanos()));
        }
        if self.reorder_rate > 0.0 && rng.chance(self.reorder_rate) {
            extra += self.reorder_delay;
        }
        extra
    }

    /// Samples whether one packet is duplicated.
    pub fn duplicates(&self, rng: &mut SimRng) -> bool {
        self.duplicate_rate > 0.0 && rng.chance(self.duplicate_rate)
    }
}

impl Default for LinkCondition {
    fn default() -> Self {
        LinkCondition::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_conditioner_draws_nothing() {
        let c = LinkCondition::none();
        assert!(c.is_noop());
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        assert_eq!(c.extra_latency(&mut a), SimDuration::ZERO);
        assert!(!c.duplicates(&mut a));
        // The conditioned RNG is still in lock-step with an untouched one.
        assert_eq!(a.gen_f64(), b.gen_f64());
    }

    #[test]
    fn jitter_is_bounded() {
        let c = LinkCondition::none().with_jitter(SimDuration::from_millis(5));
        let mut rng = SimRng::new(42);
        for _ in 0..1000 {
            let extra = c.extra_latency(&mut rng);
            assert!(extra <= SimDuration::from_millis(5));
        }
    }

    #[test]
    fn reorder_adds_fixed_delay() {
        let c = LinkCondition::none().with_reorder(1.0, SimDuration::from_millis(40));
        let mut rng = SimRng::new(42);
        assert_eq!(c.extra_latency(&mut rng), SimDuration::from_millis(40));
    }

    #[test]
    fn burst_model_produces_runs() {
        // enter 5%, exit 25%, loss 100% in the bad state: losses come in runs of ~4.
        let b = BurstLoss::new(0.05, 0.25, 1.0);
        let mut rng = SimRng::new(2006);
        let mut bad = false;
        let losses: Vec<bool> = (0..20_000).map(|_| b.step(&mut bad, &mut rng)).collect();
        let total = losses.iter().filter(|&&l| l).count();
        // Stationary bad-state share is enter/(enter+exit) = 1/6 ≈ 16.7%.
        assert!((2000..5000).contains(&total), "losses={total}");
        // Count maximal loss runs; mean run length must exceed 2 (uniform loss would give ~1.2).
        let mut runs = 0;
        let mut prev = false;
        for &l in &losses {
            if l && !prev {
                runs += 1;
            }
            prev = l;
        }
        let mean_run = total as f64 / runs as f64;
        assert!(mean_run > 2.0, "mean run {mean_run}");
    }

    #[test]
    fn burst_state_advances_before_sampling() {
        // exit = 1: the chain leaves the bad state before sampling, so nothing drops even
        // from a bad start.
        let b = BurstLoss::new(0.0, 1.0, 1.0);
        let mut rng = SimRng::new(1);
        let mut bad = true;
        assert!(!b.step(&mut bad, &mut rng));
        assert!(!bad);
    }

    #[test]
    fn duplication_rate_respected() {
        let c = LinkCondition::none().with_duplication(0.3);
        let mut rng = SimRng::new(9);
        let dups = (0..10_000).filter(|_| c.duplicates(&mut rng)).count();
        assert!((2700..3300).contains(&dups), "dups={dups}");
    }
}
