//! A self-contained ping (echo request/reply) application.
//!
//! The paper uses `ping` for the two emulation-accuracy experiments: Figure 6 (round-trip time
//! as a function of the number of firewall rules) and the Figure 7 latency-decomposition check
//! (853 ms between `10.1.3.207` and `10.2.2.117`). [`PingWorld`] is a minimal [`NetHost`] whose
//! only application is an echo responder, used by those benches and by integration tests.

use crate::addr::SocketAddr;
use crate::endpoint::Endpoint;
use crate::network::{Network, VNodeId};
use crate::transport::{NetHost, NetSim, TransportEvent};
use p2plab_sim::{FxHashMap, SimDuration, SimTime, Simulation};

/// The ICMP-like echo port.
pub const ECHO_PORT: u16 = 7;

/// Payload of the echo protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PingPayload {
    /// Echo request.
    Echo {
        /// Sequence number.
        seq: u64,
    },
    /// Echo reply.
    Reply {
        /// Sequence number of the request being answered.
        seq: u64,
    },
}

/// A world whose virtual nodes all run an echo responder.
pub struct PingWorld {
    /// The emulated network.
    pub net: Network,
    /// Completed round trips: `(pinging node, rtt)`.
    pub rtts: Vec<(VNodeId, SimDuration)>,
    pending: FxHashMap<u64, (VNodeId, SimTime)>,
    next_seq: u64,
    packet_size: u64,
}

impl PingWorld {
    /// Creates a ping world over the given network. `packet_size` is the echo payload size
    /// (a standard ping uses 56 bytes of payload).
    pub fn new(net: Network, packet_size: u64) -> PingWorld {
        PingWorld {
            net,
            rtts: Vec::new(),
            pending: FxHashMap::default(),
            next_seq: 0,
            packet_size,
        }
    }

    /// Average measured round-trip time, if any pings completed.
    pub fn average_rtt(&self) -> Option<SimDuration> {
        if self.rtts.is_empty() {
            return None;
        }
        let total: u64 = self.rtts.iter().map(|(_, d)| d.as_nanos()).sum();
        Some(SimDuration::from_nanos(total / self.rtts.len() as u64))
    }

    /// Minimum and maximum measured round-trip times.
    pub fn min_max_rtt(&self) -> Option<(SimDuration, SimDuration)> {
        let min = self.rtts.iter().map(|(_, d)| *d).min()?;
        let max = self.rtts.iter().map(|(_, d)| *d).max()?;
        Some((min, max))
    }
}

impl NetHost for PingWorld {
    type Payload = PingPayload;

    fn network(&mut self) -> &mut Network {
        &mut self.net
    }

    fn on_transport_event(
        sim: &mut NetSim<Self>,
        node: VNodeId,
        event: TransportEvent<PingPayload>,
    ) {
        match event {
            TransportEvent::Datagram {
                from,
                to_port,
                payload: PingPayload::Echo { seq },
                size,
            } => {
                // Echo responder: reply from the port the request was addressed to, back to
                // wherever it came from.
                let _ = Endpoint::new(node).send_datagram(
                    sim,
                    to_port,
                    from,
                    size,
                    PingPayload::Reply { seq },
                );
            }
            TransportEvent::Datagram {
                payload: PingPayload::Reply { seq },
                ..
            } => {
                let now = sim.now();
                if let Some((origin, sent_at)) = sim.world_mut().pending.remove(&seq) {
                    sim.world_mut().rtts.push((origin, now - sent_at));
                }
            }
            _ => {}
        }
    }
}

/// Sends one echo request from `from` to `to`. The RTT is recorded in
/// [`PingWorld::rtts`] when (and if) the reply arrives.
pub fn ping(sim: &mut NetSim<PingWorld>, from: VNodeId, to: VNodeId) {
    let seq = sim.world().next_seq;
    sim.world_mut().next_seq += 1;
    let now = sim.now();
    sim.world_mut().pending.insert(seq, (from, now));
    let to_addr = sim.world_mut().net.addr_of(to);
    let size = sim.world().packet_size;
    let _ = Endpoint::new(from).send_datagram(
        sim,
        ECHO_PORT,
        SocketAddr::new(to_addr, ECHO_PORT),
        size,
        PingPayload::Echo { seq },
    );
}

/// Sends `count` echo requests from `from` to `to`, spaced by `interval`, runs the simulation to
/// completion, and returns the measured RTTs.
pub fn ping_series(
    world: PingWorld,
    from: VNodeId,
    to: VNodeId,
    count: usize,
    interval: SimDuration,
    seed: u64,
) -> (PingWorld, Vec<SimDuration>) {
    let mut sim: NetSim<PingWorld> = Simulation::with_events(world, seed);
    for i in 0..count {
        sim.schedule_at(SimTime::ZERO + interval * i as u64, move |sim| {
            ping(sim, from, to);
        });
    }
    sim.run();
    let world = sim.into_world();
    let rtts = world.rtts.iter().map(|(_, d)| *d).collect();
    (world, rtts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::VirtAddr;
    use crate::network::NetworkConfig;
    use crate::topology::{AccessLinkClass, GroupId, TopologySpec};

    fn two_node_world(rules_on_sender: usize) -> PingWorld {
        let topo = TopologySpec::uniform(
            "lan",
            2,
            AccessLinkClass::symmetric(100_000_000, SimDuration::from_micros(100)),
        );
        let mut net = Network::new(NetworkConfig::default(), topo);
        let m0 = net.add_machine("pm0", VirtAddr::new(192, 168, 38, 1));
        let m1 = net.add_machine("pm1", VirtAddr::new(192, 168, 38, 2));
        net.add_vnode(m0, VirtAddr::new(10, 0, 0, 1), GroupId(0))
            .unwrap();
        net.add_vnode(m1, VirtAddr::new(10, 0, 0, 2), GroupId(0))
            .unwrap();
        net.machine_mut(crate::network::MachineId(0))
            .firewall
            .add_dummy_rules(rules_on_sender);
        PingWorld::new(net, 56)
    }

    #[test]
    fn ping_measures_round_trip() {
        let world = two_node_world(0);
        let (world, rtts) = ping_series(
            world,
            VNodeId(0),
            VNodeId(1),
            5,
            SimDuration::from_millis(100),
            1,
        );
        assert_eq!(rtts.len(), 5);
        // Two traversals of the 100 us links in each direction: at least 400 us.
        assert!(rtts.iter().all(|r| r.as_micros() >= 400));
        assert!(world.average_rtt().unwrap().as_micros() >= 400);
        let (min, max) = world.min_max_rtt().unwrap();
        assert!(min <= max);
    }

    #[test]
    fn rtt_grows_linearly_with_rule_count() {
        // The Figure 6 mechanism, end to end: more rules on the sending physical node's
        // firewall means proportionally larger RTT.
        let rtt_with = |rules: usize| {
            let world = two_node_world(rules);
            let (_, rtts) = ping_series(
                world,
                VNodeId(0),
                VNodeId(1),
                3,
                SimDuration::from_millis(50),
                1,
            );
            rtts.iter().map(|r| r.as_nanos()).sum::<u64>() as f64 / rtts.len() as f64
        };
        let base = rtt_with(0);
        let mid = rtt_with(10_000);
        let big = rtt_with(20_000);
        // Each outgoing packet on the sender scans the dummy rules once per direction
        // (request out, reply in), so the RTT delta should double when the rule count doubles.
        let d1 = mid - base;
        let d2 = big - base;
        assert!(d1 > 0.0);
        let ratio = d2 / d1;
        assert!((ratio - 2.0).abs() < 0.2, "ratio={ratio}");
    }
}
