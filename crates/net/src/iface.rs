//! Network-interface alias table.
//!
//! Each physical node keeps its main (administration) IP address and receives one interface
//! alias per hosted virtual node (paper, Figure 4). The paper's evaluation found that aliases
//! add no measurable overhead compared to a normally assigned address; the model reflects that
//! by making alias lookup a constant-cost operation.

use crate::addr::VirtAddr;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The address configuration of one physical node's interface (`eth0` in the paper's figure).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interface {
    /// The administration address of the physical node (e.g. `192.168.38.1`).
    admin_addr: VirtAddr,
    /// Aliases assigned to hosted virtual nodes (e.g. `10.0.0.1` ... `10.0.0.50`).
    aliases: BTreeSet<VirtAddr>,
}

/// Error when manipulating interface aliases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IfaceError {
    /// The alias is already configured on this interface.
    DuplicateAlias(VirtAddr),
    /// The alias collides with the administration address.
    CollidesWithAdmin(VirtAddr),
}

impl std::fmt::Display for IfaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IfaceError::DuplicateAlias(a) => write!(f, "alias {a} already configured"),
            IfaceError::CollidesWithAdmin(a) => write!(f, "alias {a} collides with admin address"),
        }
    }
}

impl std::error::Error for IfaceError {}

impl Interface {
    /// Creates an interface with only its administration address.
    pub fn new(admin_addr: VirtAddr) -> Interface {
        Interface {
            admin_addr,
            aliases: BTreeSet::new(),
        }
    }

    /// The administration address.
    pub fn admin_addr(&self) -> VirtAddr {
        self.admin_addr
    }

    /// Adds an alias for a virtual node.
    pub fn add_alias(&mut self, addr: VirtAddr) -> Result<(), IfaceError> {
        if addr == self.admin_addr {
            return Err(IfaceError::CollidesWithAdmin(addr));
        }
        if !self.aliases.insert(addr) {
            return Err(IfaceError::DuplicateAlias(addr));
        }
        Ok(())
    }

    /// Removes an alias; returns whether it was present.
    pub fn remove_alias(&mut self, addr: VirtAddr) -> bool {
        self.aliases.remove(&addr)
    }

    /// Whether the interface answers for `addr` (admin address or any alias).
    pub fn owns(&self, addr: VirtAddr) -> bool {
        addr == self.admin_addr || self.aliases.contains(&addr)
    }

    /// Number of configured aliases.
    pub fn alias_count(&self) -> usize {
        self.aliases.len()
    }

    /// Iterates over the aliases in address order.
    pub fn aliases(&self) -> impl Iterator<Item = VirtAddr> + '_ {
        self.aliases.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_node1_configuration() {
        // Node 1 of the paper's Figure 4: admin 192.168.38.1, aliases 10.0.0.1 .. 10.0.0.50.
        let mut iface = Interface::new(VirtAddr::new(192, 168, 38, 1));
        for i in 1..=50u32 {
            iface
                .add_alias(VirtAddr::new(10, 0, 0, 0).offset(i))
                .unwrap();
        }
        assert_eq!(iface.alias_count(), 50);
        assert!(iface.owns(VirtAddr::new(10, 0, 0, 17)));
        assert!(iface.owns(VirtAddr::new(192, 168, 38, 1)));
        assert!(!iface.owns(VirtAddr::new(10, 0, 0, 51)));
    }

    #[test]
    fn duplicate_alias_rejected() {
        let mut iface = Interface::new(VirtAddr::new(192, 168, 38, 1));
        let a = VirtAddr::new(10, 0, 0, 1);
        iface.add_alias(a).unwrap();
        assert_eq!(iface.add_alias(a), Err(IfaceError::DuplicateAlias(a)));
    }

    #[test]
    fn admin_collision_rejected() {
        let mut iface = Interface::new(VirtAddr::new(192, 168, 38, 1));
        assert_eq!(
            iface.add_alias(VirtAddr::new(192, 168, 38, 1)),
            Err(IfaceError::CollidesWithAdmin(VirtAddr::new(
                192, 168, 38, 1
            )))
        );
    }

    #[test]
    fn remove_alias() {
        let mut iface = Interface::new(VirtAddr::new(192, 168, 38, 1));
        let a = VirtAddr::new(10, 0, 0, 1);
        iface.add_alias(a).unwrap();
        assert!(iface.remove_alias(a));
        assert!(!iface.remove_alias(a));
        assert!(!iface.owns(a));
    }

    #[test]
    fn aliases_iterate_in_order() {
        let mut iface = Interface::new(VirtAddr::new(192, 168, 38, 1));
        iface.add_alias(VirtAddr::new(10, 0, 0, 3)).unwrap();
        iface.add_alias(VirtAddr::new(10, 0, 0, 1)).unwrap();
        iface.add_alias(VirtAddr::new(10, 0, 0, 2)).unwrap();
        let v: Vec<_> = iface.aliases().collect();
        assert_eq!(
            v,
            vec![
                VirtAddr::new(10, 0, 0, 1),
                VirtAddr::new(10, 0, 0, 2),
                VirtAddr::new(10, 0, 0, 3)
            ]
        );
    }
}
