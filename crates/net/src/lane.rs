//! Typed lanes: per-connection channels with distinct reliability, ordering and framing.
//!
//! A connection is not one undifferentiated byte stream: real protocols multiplex traffic with
//! different delivery requirements over one peer relationship (bulk data that must arrive,
//! control messages that must arrive but whose relative order is irrelevant, telemetry that is
//! better dropped than queued). The transport models this as **lanes** — every message sent on
//! a connection names the lane it travels on, and the lane determines
//!
//! * the **framing overhead** charged on the wire (an ordered lane pays for sequence *and*
//!   cumulative-ack bookkeeping, an unordered reliable lane only for the retransmit id, an
//!   unreliable lane for a bare length/port header), and
//! * the **retransmit policy** applied when a pipe drops the frame (exponential backoff for the
//!   ordered lane, where a gap stalls delivery anyway; a flat quick retry for the unordered
//!   reliable lane; nothing for the unreliable lane).
//!
//! The emulated data plane itself walks every frame over the same FIFO pipes, so observed
//! delivery is in practice in send order unless a retransmission overtakes it — the lanes
//! differ in cost model and loss semantics, which is what the experiments measure.
//!
//! The design follows `aeronet`'s lane taxonomy (reliability × ordering), reduced to the three
//! kinds the emulation can distinguish.

use p2plab_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// The delivery class of a message on a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LaneKind {
    /// Delivered reliably, in order — the classic TCP-like stream. This is the lane the legacy
    /// [`send`](crate::transport::send) free function always used.
    ReliableOrdered,
    /// Delivered reliably, but the receiver takes frames as they arrive — no head-of-line
    /// blocking, slightly cheaper framing (no cumulative-ack bookkeeping).
    ReliableUnordered,
    /// Fire-and-forget over the connection: dropped frames are not retransmitted. Same loss
    /// semantics as a connectionless datagram, but addressed by connection.
    UnreliableUnordered,
}

impl LaneKind {
    /// Every lane kind, in enum order.
    pub const ALL: [LaneKind; 3] = [
        LaneKind::ReliableOrdered,
        LaneKind::ReliableUnordered,
        LaneKind::UnreliableUnordered,
    ];

    /// Bytes of per-message framing the lane pays on the wire, on top of the payload.
    ///
    /// The ordered reliable lane carries sequence + cumulative-ack state (40 bytes — exactly
    /// the legacy data path's header, so ported protocols keep their wire-identical cost); the
    /// unordered reliable lane drops the ack bookkeeping (36); the unreliable lane pays the
    /// bare datagram header (28).
    pub fn header_bytes(self) -> u64 {
        match self {
            LaneKind::ReliableOrdered => 40,
            LaneKind::ReliableUnordered => 36,
            LaneKind::UnreliableUnordered => 28,
        }
    }

    /// The lane's index into per-lane state arrays (matches [`LaneKind::ALL`] order).
    pub fn index(self) -> usize {
        match self {
            LaneKind::ReliableOrdered => 0,
            LaneKind::ReliableUnordered => 1,
            LaneKind::UnreliableUnordered => 2,
        }
    }

    /// Whether frames on this lane are retransmitted after a drop.
    pub fn reliable(self) -> bool {
        !matches!(self, LaneKind::UnreliableUnordered)
    }

    /// The lane's retransmission backoff before attempt `attempts + 1`, given the transport's
    /// base RTO, or `None` when the lane does not retransmit.
    ///
    /// * [`ReliableOrdered`](LaneKind::ReliableOrdered) backs off exponentially (a gap stalls
    ///   the stream anyway, so pushing harder only fills the queues) — `rto * 2^min(n,5) / 2`,
    ///   the legacy transport's exact schedule.
    /// * [`ReliableUnordered`](LaneKind::ReliableUnordered) retries on a flat RTO: no ordering
    ///   means no stall, so the lane trades bandwidth for latency.
    /// * [`UnreliableUnordered`](LaneKind::UnreliableUnordered) never retransmits.
    pub fn retransmit_backoff(self, attempts: u32, rto: SimDuration) -> Option<SimDuration> {
        match self {
            LaneKind::ReliableOrdered => Some(rto * (1u64 << attempts.min(5)) / 2),
            LaneKind::ReliableUnordered => Some(rto),
            LaneKind::UnreliableUnordered => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framing_overhead_is_ordered_by_guarantees() {
        assert!(
            LaneKind::ReliableOrdered.header_bytes() > LaneKind::ReliableUnordered.header_bytes()
        );
        assert!(
            LaneKind::ReliableUnordered.header_bytes()
                > LaneKind::UnreliableUnordered.header_bytes()
        );
        // The ordered lane's header is the legacy data path's 40 bytes: ported protocols keep
        // byte-identical wire costs.
        assert_eq!(LaneKind::ReliableOrdered.header_bytes(), 40);
        assert_eq!(LaneKind::UnreliableUnordered.header_bytes(), 28);
    }

    #[test]
    fn retransmit_policies_differ_per_lane() {
        let rto = SimDuration::from_millis(500);
        // Ordered: exponential, capped at 2^5.
        assert_eq!(
            LaneKind::ReliableOrdered.retransmit_backoff(1, rto),
            Some(rto)
        );
        assert_eq!(
            LaneKind::ReliableOrdered.retransmit_backoff(3, rto),
            Some(rto * 4)
        );
        assert_eq!(
            LaneKind::ReliableOrdered.retransmit_backoff(40, rto),
            Some(rto * 16)
        );
        // Unordered reliable: flat.
        for attempts in [1, 3, 40] {
            assert_eq!(
                LaneKind::ReliableUnordered.retransmit_backoff(attempts, rto),
                Some(rto)
            );
        }
        // Unreliable: none.
        assert_eq!(
            LaneKind::UnreliableUnordered.retransmit_backoff(1, rto),
            None
        );
        assert!(!LaneKind::UnreliableUnordered.reliable());
        assert!(LaneKind::ReliableUnordered.reliable());
    }
}
