//! The transport data plane: frames, the packet walk, and the frozen free-function surface.
//!
//! This is the active half of the network substrate. Every message walks the same path a packet
//! takes in P2PLab:
//!
//! 1. the sending physical node's firewall classifies it (paying the linear rule-evaluation
//!    cost) and pushes it through the matching dummynet pipes — the virtual node's upload pipe
//!    and, if the destination is in another group, the inter-group latency pipe;
//! 2. it crosses the cluster's real network (NIC transmit pipe, switch, NIC receive pipe) unless
//!    source and destination are folded onto the same physical node;
//! 3. the receiving physical node's firewall classifies it again and pushes it through the
//!    destination virtual node's download pipe;
//! 4. it is delivered to the destination application via [`NetHost::on_transport_event`].
//!
//! Connections are TCP-like: establishment costs one round trip (plus the interception shim's
//! system calls), data messages preserve boundaries, and each message travels on a typed
//! [`LaneKind`] **lane** that fixes its framing overhead and retransmit policy. Connectionless
//! datagrams are fire-and-forget.
//!
//! **The node-facing API lives in [`crate::endpoint`]** ([`Endpoint`](crate::endpoint::Endpoint)
//! handles, lanes) with the typed request/response layer in [`crate::rpc`]. The free functions
//! here ([`listen`], [`connect`], [`send`], [`send_datagram`], [`close`]) and the [`SockEvent`]
//! enum are the **frozen compatibility surface** of the original API: thin deprecated shims over
//! the same internals, kept so historical experiments stay byte-identical. New protocol code
//! uses `Endpoint` and [`TransportEvent`].
//!
//! Every hop of the walk is a **pooled typed event** ([`NetEvent`]), not a boxed closure: the
//! in-flight record is stored inline in the engine's slab-backed queue, so the data plane —
//! the dominant event class of every large scenario — schedules no per-event heap allocation.
//! A [`NetHost`] world therefore runs on a [`NetSim`] (`Simulation<W, NetEvent<Payload>>`);
//! application-level logic is free to keep using closure events on the same simulation.

use crate::addr::{SocketAddr, VirtAddr};
use crate::lane::LaneKind;
use crate::network::{ConnId, ConnState, MachineId, NetError, Network, VNodeId};
use crate::pipe::EnqueueOutcome;
use crate::proto::{
    flow_dir, fragment_count, fragment_size, AckBitfield, CongestionController, FragOutcome,
    ProtoHalf, FRAG_HEADER_BYTES,
};
use p2plab_sim::{SimDuration, Simulation, TypedEvent};

/// World types that embed an emulated [`Network`] and receive transport events.
///
/// A world overrides exactly one of the two event hooks:
///
/// * [`on_transport_event`](NetHost::on_transport_event) — the current API, delivering
///   [`TransportEvent`]s (lane-tagged messages, datagrams carrying their receiving port);
/// * [`on_socket_event`](NetHost::on_socket_event) — the legacy hook, fed through the default
///   `on_transport_event` implementation, which down-converts every event to the frozen
///   [`SockEvent`] shape. Kept for old worlds; new code implements `on_transport_event`.
pub trait NetHost: Sized + 'static {
    /// Application payload carried by data messages and datagrams.
    type Payload: Clone + 'static;

    /// Access to the embedded network.
    fn network(&mut self) -> &mut Network;

    /// Called when a transport event (connection established/accepted/refused/closed, a
    /// lane-tagged message or a datagram delivery) reaches a virtual node.
    ///
    /// The default implementation forwards to the legacy
    /// [`on_socket_event`](NetHost::on_socket_event) hook via [`TransportEvent::into_compat`].
    fn on_transport_event(
        sim: &mut NetSim<Self>,
        node: VNodeId,
        event: TransportEvent<Self::Payload>,
    ) {
        Self::on_socket_event(sim, node, event.into_compat());
    }

    /// Legacy event hook, receiving the [`SockEvent`] compat shape. A world must override
    /// either this or [`on_transport_event`](NetHost::on_transport_event) to see traffic; the
    /// terminal default debug-asserts, so a world that forgot both hooks fails loudly in debug
    /// builds instead of silently dropping every delivery. A world that genuinely wants to
    /// ignore all traffic overrides one hook with an empty body.
    fn on_socket_event(_sim: &mut NetSim<Self>, _node: VNodeId, _event: SockEvent<Self::Payload>) {
        debug_assert!(
            false,
            "transport event delivered to a world that overrides neither on_transport_event \
             nor on_socket_event — traffic would be silently ignored"
        );
    }
}

/// The simulation type a [`NetHost`] world runs on: the typed-event class is the network
/// substrate's [`NetEvent`], so data-plane hops are pooled instead of boxed.
pub type NetSim<W> = Simulation<W, NetEvent<<W as NetHost>::Payload>>;

/// The data plane's pooled event class: one variant per packet hop. Stored inline in the event
/// queue's slab — scheduling one performs no allocation.
pub enum NetEvent<P> {
    /// Sender-side pipes done; enqueue on the source machine's NIC transmit pipe and cross the
    /// cluster network toward the destination's machine (both machines are re-derived from the
    /// flight's endpoints — events carry no redundant routing state, keeping queue slots
    /// small).
    NicTx {
        /// The in-flight message.
        flight: InFlight<P>,
    },
    /// Receiver-side processing: NIC receive pipe (when the packet crossed the cluster
    /// network, i.e. the endpoints are hosted on different machines), destination firewall and
    /// download pipe.
    Receive {
        /// The in-flight message.
        flight: InFlight<P>,
    },
    /// Final delivery to the destination application.
    Deliver {
        /// The in-flight message.
        flight: InFlight<P>,
    },
    /// Retransmission timer of a reliable frame that was dropped.
    Retransmit {
        /// The in-flight message (attempt counter already bumped).
        flight: InFlight<P>,
    },
    /// A paced fragment's release time arrived (protocol layer): record it in the sender
    /// window — ack matching and RTT anchors must reflect wire time, not plan time — and
    /// start its packet walk.
    PaceRelease {
        /// The planned fragment.
        flight: InFlight<P>,
    },
    /// Reassembly idle timeout of a fragmented message (protocol layer): if no further
    /// fragment arrived since the timer was armed, the incomplete message is discarded;
    /// otherwise the timer re-arms with a fresh progress snapshot.
    ReassemblyTimeout {
        /// The connection the message travels on.
        conn: ConnId,
        /// The lane the message travels on.
        lane: LaneKind,
        /// The message (reassembly) id.
        msg: u16,
        /// Flow direction index (see [`flow_dir`]).
        dir: u8,
        /// Fragments received when the timer was armed — unchanged on fire means stalled.
        progress: u16,
    },
}

impl<W: NetHost> TypedEvent<W> for NetEvent<W::Payload> {
    fn fire(self, sim: &mut NetSim<W>) {
        match self {
            NetEvent::NicTx { flight } => {
                let src_machine = sim.world_mut().network().vnode(flight.src).machine;
                nic_tx(sim, flight, src_machine);
            }
            NetEvent::Receive { flight } => {
                let net = sim.world_mut().network();
                let src_machine = net.vnode(flight.src).machine;
                let dst_machine = net.vnode(flight.dst).machine;
                let via = (src_machine != dst_machine).then_some(dst_machine);
                receiver_side(sim, flight, via);
            }
            NetEvent::Deliver { flight } => deliver(sim, flight),
            NetEvent::Retransmit { flight } => transmit(sim, flight, SimDuration::ZERO),
            NetEvent::PaceRelease { flight } => release_fragment(sim, flight),
            NetEvent::ReassemblyTimeout {
                conn,
                lane,
                msg,
                dir,
                progress,
            } => {
                let net = sim.world_mut().network();
                let timeout = net.config().transport.reassembly_timeout;
                let current = net.proto.get(&conn).and_then(|p| {
                    p.halves[usize::from(dir)].lanes[lane.index()]
                        .recv
                        .assembly
                        .progress(msg)
                });
                match current {
                    // Completed or already expired: nothing to reap.
                    None => {}
                    // Still receiving (retransmissions trickling in): re-arm with the new
                    // snapshot instead of reaping a repair in progress.
                    Some(current) if current != progress => {
                        sim.schedule_event_in(
                            timeout,
                            NetEvent::ReassemblyTimeout {
                                conn,
                                lane,
                                msg,
                                dir,
                                progress: current,
                            },
                        );
                    }
                    // A full timeout without a single new fragment: discard.
                    Some(_) => {
                        let net = sim.world_mut().network();
                        if let Some(p) = net.proto.get_mut(&conn) {
                            p.halves[usize::from(dir)].lanes[lane.index()]
                                .recv
                                .assembly
                                .expire(msg);
                        }
                        net.stats.reassembly_timeouts += 1;
                    }
                }
            }
        }
    }
}

/// Events delivered to applications by the session/lane API.
///
/// Compared to the legacy [`SockEvent`], messages carry the [`LaneKind`] they travelled on and
/// datagrams carry `to_port` — the local port the datagram was addressed to, without which a
/// virtual node bound on several ports cannot demultiplex its traffic.
#[derive(Debug, Clone)]
pub enum TransportEvent<P> {
    /// An outgoing connect completed.
    Connected {
        /// The connection.
        conn: ConnId,
        /// The remote endpoint.
        peer: SocketAddr,
    },
    /// An outgoing connect was refused (no listener at the destination).
    Refused {
        /// The attempted connection.
        conn: ConnId,
        /// The remote endpoint.
        peer: SocketAddr,
    },
    /// A bound port accepted an incoming connection.
    Accepted {
        /// The connection.
        conn: ConnId,
        /// The connecting endpoint.
        peer: SocketAddr,
    },
    /// A message arrived on a connection lane.
    Message {
        /// The connection.
        conn: ConnId,
        /// The lane the message travelled on.
        lane: LaneKind,
        /// The sending endpoint.
        from: SocketAddr,
        /// Application payload.
        payload: P,
        /// Application bytes.
        size: u64,
    },
    /// A connectionless datagram arrived.
    Datagram {
        /// The sending endpoint.
        from: SocketAddr,
        /// The local port the datagram was addressed to (the receiving socket).
        to_port: u16,
        /// Application payload.
        payload: P,
        /// Application bytes.
        size: u64,
    },
    /// The peer closed the connection.
    Closed {
        /// The connection.
        conn: ConnId,
    },
}

impl<P> TransportEvent<P> {
    /// Down-converts to the legacy [`SockEvent`] shape (lane tags collapse into the single
    /// `Data` variant). Used by the compat shim; new worlds consume [`TransportEvent`]
    /// directly.
    pub fn into_compat(self) -> SockEvent<P> {
        match self {
            TransportEvent::Connected { conn, peer } => SockEvent::Connected { conn, peer },
            TransportEvent::Refused { conn, peer } => SockEvent::Refused { conn, peer },
            TransportEvent::Accepted { conn, peer } => SockEvent::Accepted { conn, peer },
            TransportEvent::Message {
                conn,
                from,
                payload,
                size,
                ..
            } => SockEvent::Data {
                conn,
                from,
                payload,
                size,
            },
            TransportEvent::Datagram {
                from,
                to_port,
                payload,
                size,
            } => SockEvent::Datagram {
                from,
                to_port,
                payload,
                size,
            },
            TransportEvent::Closed { conn } => SockEvent::Closed { conn },
        }
    }
}

/// Events delivered to applications through the **legacy** socket surface.
///
/// Compatibility shape: produced by down-converting [`TransportEvent`]s (see
/// [`TransportEvent::into_compat`]), frozen apart from one deliberate addition —
/// [`Datagram`](SockEvent::Datagram) gained `to_port`, because without the receiving port a
/// vnode bound on several ports cannot demultiplex (the multi-port demux fix applies to both
/// surfaces). New worlds implement [`NetHost::on_transport_event`] instead.
#[derive(Debug, Clone)]
pub enum SockEvent<P> {
    /// An outgoing `connect()` completed.
    Connected {
        /// The connection.
        conn: ConnId,
        /// The remote endpoint.
        peer: SocketAddr,
    },
    /// An outgoing `connect()` was refused (no listener at the destination).
    Refused {
        /// The attempted connection.
        conn: ConnId,
        /// The remote endpoint.
        peer: SocketAddr,
    },
    /// A listener accepted an incoming connection.
    Accepted {
        /// The connection.
        conn: ConnId,
        /// The connecting endpoint.
        peer: SocketAddr,
    },
    /// Data arrived on a connection.
    Data {
        /// The connection.
        conn: ConnId,
        /// The sending endpoint.
        from: SocketAddr,
        /// Application payload.
        payload: P,
        /// Application bytes.
        size: u64,
    },
    /// A datagram arrived.
    Datagram {
        /// The sending endpoint.
        from: SocketAddr,
        /// The local port the datagram was addressed to.
        to_port: u16,
        /// Application payload.
        payload: P,
        /// Application bytes.
        size: u64,
    },
    /// The peer closed the connection.
    Closed {
        /// The connection.
        conn: ConnId,
    },
}

/// Protocol frames carried through the data plane.
#[derive(Debug, Clone)]
enum Frame<P> {
    Syn {
        conn: ConnId,
    },
    SynAck {
        conn: ConnId,
    },
    Rst {
        conn: ConnId,
    },
    Data {
        conn: ConnId,
        lane: LaneKind,
        payload: P,
        size: u64,
    },
    /// One fragment of a message on the protocol-depth wire path (active transport config).
    /// The payload rides on every fragment; the completing fragment supplies it to the
    /// application, so the wire cost is modelled by `frag_size` while the simulation avoids
    /// materializing per-fragment byte buffers.
    Frag {
        conn: ConnId,
        lane: LaneKind,
        /// Wire sequence number (the unit of acknowledgement).
        seq: u16,
        /// Message (reassembly) id.
        msg: u16,
        /// Fragment index within the message.
        index: u16,
        /// Total fragments of the message.
        count: u16,
        /// Payload bytes of this fragment.
        frag_size: u64,
        /// Application bytes of the whole message.
        total_size: u64,
        payload: P,
    },
    /// An acknowledgement bitfield for fragments received on a reliable lane.
    Ack {
        conn: ConnId,
        lane: LaneKind,
        ack: AckBitfield,
    },
    Fin {
        conn: ConnId,
    },
    Dgram {
        from_port: u16,
        to_port: u16,
        payload: P,
        size: u64,
    },
}

impl<P> Frame<P> {
    /// Bytes the frame occupies on the wire (payload + per-lane framing).
    fn wire_size(&self) -> u64 {
        match self {
            Frame::Syn { .. }
            | Frame::SynAck { .. }
            | Frame::Rst { .. }
            | Frame::Fin { .. }
            | Frame::Ack { .. } => 64,
            Frame::Data { size, lane, .. } => size + lane.header_bytes(),
            Frame::Frag {
                frag_size, lane, ..
            } => frag_size + lane.header_bytes() + FRAG_HEADER_BYTES,
            Frame::Dgram { size, .. } => size + LaneKind::UnreliableUnordered.header_bytes(),
        }
    }

    /// The retransmission backoff before the next attempt, or `None` when the frame is not
    /// retransmitted. Control frames (handshake, close) follow the ordered lane's exponential
    /// schedule; data frames follow their lane's policy; datagrams are never retransmitted.
    fn retransmit_backoff(&self, attempts: u32, rto: SimDuration) -> Option<SimDuration> {
        match self {
            Frame::Syn { .. } | Frame::SynAck { .. } | Frame::Rst { .. } | Frame::Fin { .. } => {
                LaneKind::ReliableOrdered.retransmit_backoff(attempts, rto)
            }
            Frame::Data { lane, .. } | Frame::Frag { lane, .. } => {
                lane.retransmit_backoff(attempts, rto)
            }
            // A lost ack is re-covered by the next one — never retransmitted.
            Frame::Dgram { .. } | Frame::Ack { .. } => None,
        }
    }

    /// Whether the transport retransmits the frame if a pipe drops it.
    fn reliable(&self) -> bool {
        match self {
            Frame::Data { lane, .. } | Frame::Frag { lane, .. } => lane.reliable(),
            Frame::Dgram { .. } => false,
            _ => true,
        }
    }

    /// Whether a conditioner-duplicated copy of the frame is honored. Only frames with
    /// receive-side dedup machinery may duplicate: fragments (the reassembler ignores
    /// duplicates) and datagrams (duplication is an application-visible hazard of unreliable
    /// traffic). Control and legacy data frames ignore the copy — the pipe draws its random
    /// numbers regardless, so determinism is independent of the frame type.
    fn duplicable(&self) -> bool {
        matches!(self, Frame::Frag { .. } | Frame::Dgram { .. })
    }
}

/// A message in flight, carrying everything needed to retry it after a drop. Opaque outside
/// the transport; it only travels inside [`NetEvent`]s. `Clone` exists for conditioner
/// duplication (a duplicated packet re-walks the remaining stages independently).
#[derive(Clone)]
pub struct InFlight<P> {
    src: VNodeId,
    dst: VNodeId,
    /// Source address as the firewall sees it (differs from `src`'s address when the BINDIP
    /// interception shim is disabled). The destination address is always `dst`'s address and
    /// is re-derived where needed instead of being carried per event.
    src_addr: VirtAddr,
    frame: Frame<P>,
    attempts: u32,
}

// ---------------------------------------------------------------------------
// Transport operations. These are the single implementation both API surfaces share: the
// session/lane methods on `Endpoint` call them directly, and the deprecated free functions
// below delegate here — so a ported protocol produces a byte-identical event stream.
// ---------------------------------------------------------------------------

/// Registers a listener on `(node, port)`.
pub(crate) fn op_bind<W: NetHost>(
    sim: &mut NetSim<W>,
    node: VNodeId,
    port: u16,
) -> Result<(), NetError> {
    let net = sim.world_mut().network();
    if node.0 >= net.vnode_count() {
        return Err(NetError::UnknownVNode(node));
    }
    if !net.listeners.insert((node, port)) {
        return Err(NetError::PortInUse(node, port));
    }
    Ok(())
}

/// Removes the listener on `(node, port)`. Returns whether it was bound.
pub(crate) fn op_unbind<W: NetHost>(sim: &mut NetSim<W>, node: VNodeId, port: u16) -> bool {
    sim.world_mut().network().listeners.remove(&(node, port))
}

/// Initiates a connection from `node` to `remote`.
pub(crate) fn op_connect<W: NetHost>(
    sim: &mut NetSim<W>,
    node: VNodeId,
    remote: SocketAddr,
) -> Result<ConnId, NetError> {
    let net = sim.world_mut().network();
    if node.0 >= net.vnode_count() {
        return Err(NetError::UnknownVNode(node));
    }
    let dst = net
        .resolve(remote.addr)
        .ok_or(NetError::NoRouteToHost(remote.addr))?;
    let port = net.allocate_ephemeral_port();
    let conn = net.allocate_conn((node, port), (dst, remote.port));
    let config = *net.config();
    let syscall_cost = config.intercept.connect_cost(&config.syscalls);
    let flight = make_flight(net, node, dst, Frame::Syn { conn });
    transmit(sim, flight, syscall_cost);
    Ok(conn)
}

/// Sends `payload` (`size` application bytes) from `node` on `lane` of an established
/// connection.
pub(crate) fn op_send<W: NetHost>(
    sim: &mut NetSim<W>,
    node: VNodeId,
    conn: ConnId,
    lane: LaneKind,
    size: u64,
    payload: W::Payload,
) -> Result<(), NetError> {
    let net = sim.world_mut().network();
    if size > net.config().max_message_bytes {
        return Err(NetError::MessageTooLarge(size));
    }
    let c = *net
        .connection(conn)
        .ok_or(NetError::UnknownConnection(conn))?;
    if c.client.0 != node && c.server.0 != node {
        return Err(NetError::UnknownConnection(conn));
    }
    if c.state != ConnState::Established {
        return Err(NetError::NotEstablished(conn));
    }
    let dst = c.peer_of(node);
    net.vnode_mut(node).bytes_sent += size;
    if net.transport_active() {
        let sender_is_client = c.client.0 == node;
        return proto_send(sim, node, dst, sender_is_client, conn, lane, size, payload);
    }
    let flight = make_flight(
        net,
        node,
        dst,
        Frame::Data {
            conn,
            lane,
            payload,
            size,
        },
    );
    transmit(sim, flight, SimDuration::ZERO);
    Ok(())
}

/// The protocol-depth send path: fragments the message to the configured MTU, assigns wire
/// sequence numbers, paces releases through the congestion controller and records reliable
/// fragments in the sender window. One [`Frame::Frag`] per fragment enters the packet walk.
#[allow(clippy::too_many_arguments)] // lint:allow(bare-allow) — internal send path mirrors op_send's checked arguments
fn proto_send<W: NetHost>(
    sim: &mut NetSim<W>,
    node: VNodeId,
    dst: VNodeId,
    sender_is_client: bool,
    conn: ConnId,
    lane: LaneKind,
    size: u64,
    payload: W::Payload,
) -> Result<(), NetError> {
    let now = sim.now();
    let net = sim.world_mut().network();
    let tc = net.config().transport;
    let mtu = tc.mtu.unwrap_or(u64::MAX);
    let count = fragment_count(size, mtu);
    let dir = flow_dir(sender_is_client);
    // Plan every fragment under one borrow of the proto table: (seq, index, release offset).
    let msg;
    let mut plans = Vec::with_capacity(usize::from(count));
    {
        let half = &mut net.proto_mut(conn).halves[dir];
        msg = half.lanes[lane.index()].send.next_msg;
        half.lanes[lane.index()].send.next_msg = msg.wrapping_add(1);
        for index in 0..count {
            let frag_size = fragment_size(size, mtu, index, count);
            let wire = frag_size + lane.header_bytes() + FRAG_HEADER_BYTES;
            let lane_send = &mut half.lanes[lane.index()].send;
            let seq = lane_send.next_seq;
            lane_send.next_seq = seq.wrapping_add(1);
            let release = half.pace_until.max(now);
            let spacing = half.cc.send_spacing(wire);
            half.pace_until = release + spacing;
            plans.push((seq, index, frag_size, release - now));
        }
    }
    net.stats.fragments_sent += u64::from(count);
    for (seq, index, frag_size, delay) in plans {
        let net = sim.world_mut().network();
        let flight = make_flight(
            net,
            node,
            dst,
            Frame::Frag {
                conn,
                lane,
                seq,
                msg,
                index,
                count,
                frag_size,
                total_size: size,
                payload: payload.clone(),
            },
        );
        // The sender window is fed at **release** time (`release_fragment`), not here at plan
        // time: a paced backlog of planned-but-unreleased fragments would otherwise flood the
        // window, evict the fragments actually on the wire and starve the congestion
        // controller of ack feedback.
        if delay.is_zero() {
            release_fragment(sim, flight);
        } else {
            sim.schedule_event_in(delay, NetEvent::PaceRelease { flight });
        }
    }
    Ok(())
}

/// A fragment reaches its paced release time: feed the congestion controller, record reliable
/// fragments in the sender window with their wire-entry time (the RTT anchor and the ack
/// matching set), and start the packet walk.
fn release_fragment<W: NetHost>(sim: &mut NetSim<W>, flight: InFlight<W::Payload>) {
    let now = sim.now();
    if let Frame::Frag {
        conn, lane, seq, ..
    } = flight.frame
    {
        let wire = flight.frame.wire_size();
        let net = sim.world_mut().network();
        let sender_is_client = net
            .connection(conn)
            .is_some_and(|c| c.client.0 == flight.src);
        let half = &mut net.proto_mut(conn).halves[flow_dir(sender_is_client)];
        half.cc.on_send(wire);
        if lane.reliable() {
            half.lanes[lane.index()].send.window.on_sent(seq, wire, now);
        }
    }
    transmit(sim, flight, SimDuration::ZERO);
}

/// Sends an unreliable connectionless datagram from `node:from_port` to `remote`.
pub(crate) fn op_send_datagram<W: NetHost>(
    sim: &mut NetSim<W>,
    node: VNodeId,
    from_port: u16,
    remote: SocketAddr,
    size: u64,
    payload: W::Payload,
) -> Result<(), NetError> {
    let net = sim.world_mut().network();
    if size > net.config().max_message_bytes {
        return Err(NetError::MessageTooLarge(size));
    }
    if node.0 >= net.vnode_count() {
        return Err(NetError::UnknownVNode(node));
    }
    let dst = net
        .resolve(remote.addr)
        .ok_or(NetError::NoRouteToHost(remote.addr))?;
    net.vnode_mut(node).bytes_sent += size;
    let flight = make_flight(
        net,
        node,
        dst,
        Frame::Dgram {
            from_port,
            to_port: remote.port,
            payload,
            size,
        },
    );
    transmit(sim, flight, SimDuration::ZERO);
    Ok(())
}

/// Closes a connection from `node`'s side and notifies the peer.
pub(crate) fn op_close<W: NetHost>(
    sim: &mut NetSim<W>,
    node: VNodeId,
    conn: ConnId,
) -> Result<(), NetError> {
    let net = sim.world_mut().network();
    let c = *net
        .connection(conn)
        .ok_or(NetError::UnknownConnection(conn))?;
    if c.client.0 != node && c.server.0 != node {
        return Err(NetError::UnknownConnection(conn));
    }
    if c.state == ConnState::Closed {
        return Ok(());
    }
    net.connection_mut(conn).expect("checked above").state = ConnState::Closed;
    let dst = c.peer_of(node);
    let flight = make_flight(net, node, dst, Frame::Fin { conn });
    transmit(sim, flight, SimDuration::ZERO);
    Ok(())
}

// ---------------------------------------------------------------------------
// The frozen free-function surface (compat shims).
// ---------------------------------------------------------------------------

/// Registers a listener on `(node, port)`.
#[deprecated(note = "use `Endpoint::bind` — the free-function surface is frozen compat")]
pub fn listen<W: NetHost>(sim: &mut NetSim<W>, node: VNodeId, port: u16) -> Result<(), NetError> {
    op_bind(sim, node, port)
}

/// Initiates a connection from `node` to `remote`. The result (`Connected`, `Refused`) is
/// reported asynchronously through the world's event hook.
#[deprecated(note = "use `Endpoint::connect` — the free-function surface is frozen compat")]
pub fn connect<W: NetHost>(
    sim: &mut NetSim<W>,
    node: VNodeId,
    remote: SocketAddr,
) -> Result<ConnId, NetError> {
    op_connect(sim, node, remote)
}

/// Sends `payload` (`size` application bytes) from `node` over an established connection, on
/// the reliable-ordered lane (the only delivery class the legacy API had).
#[deprecated(
    note = "use `Endpoint::send` with a `LaneKind` — the free-function surface is \
                     frozen compat"
)]
pub fn send<W: NetHost>(
    sim: &mut NetSim<W>,
    node: VNodeId,
    conn: ConnId,
    size: u64,
    payload: W::Payload,
) -> Result<(), NetError> {
    op_send(sim, node, conn, LaneKind::ReliableOrdered, size, payload)
}

/// Sends an unreliable datagram from `node:from_port` to `remote`.
#[deprecated(note = "use `Endpoint::send_datagram` — the free-function surface is frozen compat")]
pub fn send_datagram<W: NetHost>(
    sim: &mut NetSim<W>,
    node: VNodeId,
    from_port: u16,
    remote: SocketAddr,
    size: u64,
    payload: W::Payload,
) -> Result<(), NetError> {
    op_send_datagram(sim, node, from_port, remote, size, payload)
}

/// Closes a connection from `node`'s side and notifies the peer.
#[deprecated(note = "use `Endpoint::close` — the free-function surface is frozen compat")]
pub fn close<W: NetHost>(sim: &mut NetSim<W>, node: VNodeId, conn: ConnId) -> Result<(), NetError> {
    op_close(sim, node, conn)
}

// ---------------------------------------------------------------------------
// The packet walk.
// ---------------------------------------------------------------------------

fn make_flight<P>(net: &Network, src: VNodeId, dst: VNodeId, frame: Frame<P>) -> InFlight<P> {
    let src_node = net.vnode(src);
    let admin = net.machine(src_node.machine).iface.admin_addr();
    InFlight {
        src,
        dst,
        src_addr: net.config().intercept.source_addr(src_node.addr, admin),
        frame,
        attempts: 0,
    }
}

/// Sender-side processing: firewall classification, sender pipes, then hand-off to the cluster
/// network (or directly to the receiver side when both nodes share a physical machine).
fn transmit<W: NetHost>(
    sim: &mut NetSim<W>,
    flight: InFlight<W::Payload>,
    extra_delay: SimDuration,
) {
    let now = sim.now();
    let wire = flight.frame.wire_size();
    let mut extra_delay = extra_delay;
    if flight.attempts == 0 {
        let net = sim.world_mut().network();
        net.stats.messages_sent += 1;
        if !net.byzantine.is_empty() && net.byzantine.contains(&flight.src) {
            net.stats.byzantine_msgs_sent += 1;
        }
        // Sender-side tamper point (see `crate::tamper`): only fresh frames from nodes with an
        // installed tamper state are touched, drawing from the node's own split RNG stream. An
        // honest run keeps the map empty, so the frozen packet walk is byte-identical.
        if !net.tamper.is_empty() {
            let duplicable = flight.frame.duplicable();
            let action = net.tamper.get_mut(&flight.src).map(|state| {
                if state.rng.chance(state.spec.drop_rate) {
                    None
                } else {
                    let dup = duplicable && state.rng.chance(state.spec.duplicate_rate);
                    Some((state.spec.delay, dup))
                }
            });
            match action {
                Some(None) => {
                    // Swallowed before the wire: genuinely silent — no pipe drop occurred, so
                    // no retransmission machinery ever sees the frame.
                    net.stats.tampered_drops += 1;
                    return;
                }
                Some(Some((delay, dup))) => {
                    if !delay.is_zero() {
                        net.stats.tampered_delays += 1;
                        extra_delay += delay;
                    }
                    if dup {
                        net.stats.tampered_duplicates += 1;
                        let mut copy = flight.clone();
                        // Mark the copy non-fresh so it is neither re-counted nor re-tampered
                        // when it re-enters the walk behind the original.
                        copy.attempts = 1;
                        sim.schedule_event_at(
                            now + extra_delay,
                            NetEvent::Retransmit { flight: copy },
                        );
                    }
                }
                None => {}
            }
        }
    }
    let (world, rng) = sim.world_and_rng();
    let net = world.network();
    let src_machine = net.vnode(flight.src).machine;
    let dst_machine = net.vnode(flight.dst).machine;
    let classification = net.classify_out(src_machine, flight.src, flight.src_addr, flight.dst);
    if !classification.accepted {
        net.stats.messages_dropped += 1;
        return;
    }
    let mut t = now + extra_delay + classification.evaluation_cost;
    let mut dup_off: Option<SimDuration> = None;
    for pipe in &classification.pipes {
        match net.pipe_mut(pipe).enqueue(t, wire, rng) {
            EnqueueOutcome::Forwarded { exit, dup } => {
                if dup_off.is_none() {
                    // The duplicated copy trails the original by the dup's extra serialization;
                    // it re-walks the remaining stages as an independent packet.
                    dup_off = dup.map(|d| d - exit);
                }
                t = exit;
            }
            EnqueueOutcome::Dropped(_) => {
                handle_drop(sim, flight);
                return;
            }
        }
    }
    let dup_t = dup_off
        .filter(|_| flight.frame.duplicable())
        .map(|off| t + off);
    if src_machine == dst_machine {
        // Folded nodes: traffic stays inside the machine (loopback), no NIC involved.
        if let Some(dt) = dup_t {
            let copy = flight.clone();
            sim.schedule_event_at(dt, NetEvent::Receive { flight: copy });
        }
        sim.schedule_event_at(t, NetEvent::Receive { flight });
    } else {
        if let Some(dt) = dup_t {
            let copy = flight.clone();
            sim.schedule_event_at(dt, NetEvent::NicTx { flight: copy });
        }
        sim.schedule_event_at(t, NetEvent::NicTx { flight });
    }
}

/// The cluster-network hop: charge the source machine's NIC transmit pipe and forward to the
/// receiver side on the destination machine.
fn nic_tx<W: NetHost>(sim: &mut NetSim<W>, flight: InFlight<W::Payload>, src_machine: MachineId) {
    let now = sim.now();
    let wire = flight.frame.wire_size();
    let (world, rng) = sim.world_and_rng();
    let net = world.network();
    let nic_tx = net.machine(src_machine).nic_tx;
    match net.pipe_mut(nic_tx).enqueue(now, wire, rng) {
        EnqueueOutcome::Forwarded { exit, dup } => {
            if let Some(dt) = dup.filter(|_| flight.frame.duplicable()) {
                let copy = flight.clone();
                sim.schedule_event_at(dt, NetEvent::Receive { flight: copy });
            }
            sim.schedule_event_at(exit, NetEvent::Receive { flight });
        }
        EnqueueOutcome::Dropped(_) => handle_drop(sim, flight),
    }
}

/// Receiver-side processing: NIC receive pipe (if the message crossed the cluster network), the
/// receiving machine's firewall and the destination node's download pipe, then delivery.
fn receiver_side<W: NetHost>(
    sim: &mut NetSim<W>,
    flight: InFlight<W::Payload>,
    via_machine: Option<crate::network::MachineId>,
) {
    let now = sim.now();
    let wire = flight.frame.wire_size();
    let (world, rng) = sim.world_and_rng();
    let net = world.network();
    let mut t = now;
    let mut dup_off: Option<SimDuration> = None;
    if let Some(machine) = via_machine {
        let nic_rx = net.machine(machine).nic_rx;
        match net.pipe_mut(nic_rx).enqueue(now, wire, rng) {
            EnqueueOutcome::Forwarded { exit, dup } => {
                dup_off = dup.map(|d| d - exit);
                t = exit;
            }
            EnqueueOutcome::Dropped(_) => {
                handle_drop(sim, flight);
                return;
            }
        }
    }
    let dst_machine = net.vnode(flight.dst).machine;
    let classification = net.classify_in(dst_machine, flight.src, flight.src_addr, flight.dst);
    if !classification.accepted {
        net.stats.messages_dropped += 1;
        return;
    }
    t += classification.evaluation_cost;
    for pipe in &classification.pipes {
        match net.pipe_mut(pipe).enqueue(t, wire, rng) {
            EnqueueOutcome::Forwarded { exit, dup } => {
                if dup_off.is_none() {
                    dup_off = dup.map(|d| d - exit);
                }
                t = exit;
            }
            EnqueueOutcome::Dropped(_) => {
                handle_drop(sim, flight);
                return;
            }
        }
    }
    let dup_t = dup_off
        .filter(|_| flight.frame.duplicable())
        .map(|off| t + off);
    if let Some(dt) = dup_t {
        let copy = flight.clone();
        sim.schedule_event_at(dt, NetEvent::Deliver { flight: copy });
    }
    sim.schedule_event_at(t, NetEvent::Deliver { flight });
}

/// Retransmission policy after a pipe dropped the frame: reliable frames are retried on their
/// lane's backoff schedule (bounded by `max_attempts`), unreliable frames are counted dropped.
fn handle_drop<W: NetHost>(sim: &mut NetSim<W>, mut flight: InFlight<W::Payload>) {
    let config = *sim.world_mut().network().config();
    let backoff = (flight.attempts + 1 < config.max_attempts)
        .then(|| {
            flight
                .frame
                .retransmit_backoff(flight.attempts + 1, config.rto)
        })
        .flatten();
    match backoff {
        Some(backoff) => {
            flight.attempts += 1;
            let net = sim.world_mut().network();
            if let Frame::Frag {
                conn, lane, seq, ..
            } = flight.frame
            {
                // Selective retransmit: only the lost fragment is resent, and the loss feeds
                // the sender's congestion controller (drop-triggered — the sim is omniscient,
                // so no timeout machinery is needed to detect it).
                net.stats.selective_retransmits += 1;
                let sender_is_client = net
                    .connection(conn)
                    .is_some_and(|c| c.client.0 == flight.src);
                let half = &mut net.proto_mut(conn).halves[flow_dir(sender_is_client)];
                half.cc.on_loss();
                // Karn's algorithm: the retried fragment's eventual ack must not produce an
                // RTT sample, or retransmit backoffs would inflate srtt and stall the pacer.
                half.lanes[lane.index()].send.window.mark_retransmitted(seq);
            } else {
                net.stats.retransmissions += 1;
            }
            sim.schedule_event_in(backoff, NetEvent::Retransmit { flight });
        }
        None => {
            // A lost ack is silent by design (the next ack re-covers its window) — it is
            // neither an abandoned message nor an application datagram.
            if matches!(flight.frame, Frame::Ack { .. }) {
                return;
            }
            let net = sim.world_mut().network();
            let mut newly_dead = true;
            if let Frame::Frag {
                conn, lane, msg, ..
            } = flight.frame
            {
                // A reliable fragment lands here only with its attempts exhausted — the
                // message can never complete. Kill the receiver's partial assembly (the sim
                // is omniscient) so still-retrying sibling fragments are ignored instead of
                // reopening a dead entry, and so each abandoned message is counted once.
                // Unreliable fragments keep the receiver-side behaviour a real stack has:
                // the assembly stays open until the idle reassembly timeout strands it.
                if lane.reliable() {
                    let sender_is_client = net
                        .connection(conn)
                        .is_some_and(|c| c.client.0 == flight.src);
                    let half = &mut net.proto_mut(conn).halves[flow_dir(sender_is_client)];
                    newly_dead = half.lanes[lane.index()].recv.assembly.abandon(msg);
                }
            }
            if newly_dead {
                let stats = &mut net.stats;
                stats.messages_dropped += 1;
                if !flight.frame.reliable() {
                    stats.datagrams_dropped += 1;
                }
            }
        }
    }
}

/// Final delivery: updates connection/node counters and raises the application event.
fn deliver<W: NetHost>(sim: &mut NetSim<W>, flight: InFlight<W::Payload>) {
    let now = sim.now();
    let dst = flight.dst;
    let src_addr = flight.src_addr;
    let net = sim.world_mut().network();
    net.stats.messages_delivered += 1;

    match flight.frame {
        Frame::Syn { conn } => {
            let c = match net.connection(conn) {
                Some(c) => *c,
                None => return,
            };
            let listening = net.is_listening(dst, c.server.1);
            if listening {
                {
                    let entry = net.connection_mut(conn).expect("connection exists");
                    entry.state = ConnState::Established;
                    entry.established_at = Some(now);
                }
                let peer = SocketAddr::new(src_addr, c.client.1);
                let reply = make_flight(net, dst, flight.src, Frame::SynAck { conn });
                transmit(sim, reply, SimDuration::ZERO);
                W::on_transport_event(sim, dst, TransportEvent::Accepted { conn, peer });
            } else {
                let reply = make_flight(net, dst, flight.src, Frame::Rst { conn });
                transmit(sim, reply, SimDuration::ZERO);
            }
        }
        Frame::SynAck { conn } => {
            let c = match net.connection(conn) {
                Some(c) => *c,
                None => return,
            };
            {
                let entry = net.connection_mut(conn).expect("connection exists");
                if entry.state == ConnState::Connecting {
                    entry.state = ConnState::Established;
                }
                if entry.established_at.is_none() {
                    entry.established_at = Some(now);
                }
            }
            let peer = SocketAddr::new(net.addr_of(c.server.0), c.server.1);
            W::on_transport_event(sim, dst, TransportEvent::Connected { conn, peer });
        }
        Frame::Rst { conn } => {
            let c = match net.connection(conn) {
                Some(c) => *c,
                None => return,
            };
            net.connection_mut(conn).expect("connection exists").state = ConnState::Refused;
            let peer = SocketAddr::new(net.addr_of(c.server.0), c.server.1);
            W::on_transport_event(sim, dst, TransportEvent::Refused { conn, peer });
        }
        Frame::Data {
            conn,
            lane,
            payload,
            size,
        } => {
            let from_port = {
                let Some(entry) = net.connection_mut(conn) else {
                    return;
                };
                if entry.state == ConnState::Closed {
                    return;
                }
                if dst == entry.server.0 {
                    entry.bytes_from_client += size;
                } else {
                    entry.bytes_from_server += size;
                }
                entry.port_of(entry.peer_of(dst))
            };
            net.vnode_mut(dst).bytes_received += size;
            net.stats.bytes_delivered += size;
            let from = SocketAddr::new(src_addr, from_port);
            W::on_transport_event(
                sim,
                dst,
                TransportEvent::Message {
                    conn,
                    lane,
                    from,
                    payload,
                    size,
                },
            );
        }
        Frame::Frag {
            conn,
            lane,
            seq,
            msg,
            index,
            count,
            frag_size: _,
            total_size,
            payload,
        } => {
            // All `net`-borrow work happens before any `sim` work (scheduling, app events).
            let c = match net.connection(conn) {
                Some(c) => *c,
                None => return,
            };
            if c.state == ConnState::Closed {
                return;
            }
            let dir = flow_dir(flight.src == c.client.0);
            let reassembly_timeout = net.config().transport.reassembly_timeout;
            let (outcome, ack_field) = {
                let proto = net.proto_mut(conn);
                let lane_recv = &mut proto.halves[dir].lanes[lane.index()].recv;
                lane_recv.ack.record(seq);
                let field = lane.reliable().then(|| lane_recv.ack.bitfield());
                (lane_recv.assembly.accept(msg, index, count), field)
            };
            let ack_flight = ack_field.map(|ack| {
                net.stats.acks_sent += 1;
                make_flight(net, dst, flight.src, Frame::Ack { conn, lane, ack })
            });
            match outcome {
                FragOutcome::Complete => {
                    {
                        let entry = net.connection_mut(conn).expect("looked up above");
                        if dst == entry.server.0 {
                            entry.bytes_from_client += total_size;
                        } else {
                            entry.bytes_from_server += total_size;
                        }
                    }
                    net.vnode_mut(dst).bytes_received += total_size;
                    net.stats.bytes_delivered += total_size;
                    let from = SocketAddr::new(src_addr, c.port_of(c.peer_of(dst)));
                    if let Some(f) = ack_flight {
                        transmit(sim, f, SimDuration::ZERO);
                    }
                    W::on_transport_event(
                        sim,
                        dst,
                        TransportEvent::Message {
                            conn,
                            lane,
                            from,
                            payload,
                            size: total_size,
                        },
                    );
                }
                FragOutcome::Pending { first } => {
                    if let Some(f) = ack_flight {
                        transmit(sim, f, SimDuration::ZERO);
                    }
                    // Only unreliable assemblies get the idle reaper: reliable fragments are
                    // retransmitted until they arrive or the sender abandons them, and the
                    // abandonment itself kills the assembly (see `handle_drop`) — an idle
                    // timer would discard acked fragments that are never resent, leaving the
                    // message permanently undeliverable.
                    if first && !lane.reliable() {
                        sim.schedule_event_in(
                            reassembly_timeout,
                            NetEvent::ReassemblyTimeout {
                                conn,
                                lane,
                                msg,
                                dir: dir as u8,
                                // A fresh entry holds exactly the fragment that opened it.
                                progress: 1,
                            },
                        );
                    }
                }
                // Duplicate or stale fragment: the ack still goes out (it re-covers the
                // window), but nothing is delivered.
                FragOutcome::Ignored => {
                    if let Some(f) = ack_flight {
                        transmit(sim, f, SimDuration::ZERO);
                    }
                }
            }
        }
        Frame::Ack { conn, lane, ack } => {
            let c = match net.connection(conn) {
                Some(c) => *c,
                None => return,
            };
            // The ack's receiver is the sender of the acked data, so the flow direction is
            // the one where `dst` transmits.
            let dir = flow_dir(dst == c.client.0);
            let Some(proto) = net.proto.get_mut(&conn) else {
                return;
            };
            let ProtoHalf { cc, lanes, .. } = &mut proto.halves[dir];
            lanes[lane.index()]
                .send
                .window
                .on_ack(&ack, |wire_bytes, sent_at| {
                    // `sent_at` is None for retransmitted fragments: bytes credited, no RTT
                    // sample (Karn's algorithm).
                    cc.on_ack(wire_bytes, sent_at.map(|s| now - s));
                });
        }
        Frame::Fin { conn } => {
            let entry = match net.connection_mut(conn) {
                Some(e) => e,
                None => return,
            };
            // The initiator already marked the connection closed before sending the FIN; the
            // receiving endpoint still gets its Closed notification.
            entry.state = ConnState::Closed;
            W::on_transport_event(sim, dst, TransportEvent::Closed { conn });
        }
        Frame::Dgram {
            from_port,
            to_port,
            payload,
            size,
        } => {
            net.vnode_mut(dst).bytes_received += size;
            net.stats.bytes_delivered += size;
            let from = SocketAddr::new(src_addr, from_port);
            W::on_transport_event(
                sim,
                dst,
                TransportEvent::Datagram {
                    from,
                    to_port,
                    payload,
                    size,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    // These tests drive the transport through the FROZEN compat surface (free functions +
    // `SockEvent`): they are the proof that legacy worlds keep working unchanged on top of the
    // session/lane internals. The session/lane/RPC API has its own suite in
    // `tests/transport_edge.rs` and the `endpoint`/`rpc` module tests.
    #![allow(deprecated)]

    use super::*;
    use crate::network::NetworkConfig;
    use crate::topology::{AccessLinkClass, GroupId, TopologySpec};
    use p2plab_sim::SimTime;

    /// Minimal world for transport tests: records every socket event with its timestamp.
    struct TestWorld {
        net: Network,
        events: Vec<(SimTime, VNodeId, String)>,
        received_payloads: Vec<(VNodeId, u32)>,
        echo_data: bool,
    }

    impl NetHost for TestWorld {
        type Payload = u32;

        fn network(&mut self) -> &mut Network {
            &mut self.net
        }

        fn on_socket_event(sim: &mut NetSim<Self>, node: VNodeId, event: SockEvent<u32>) {
            let now = sim.now();
            let label = match &event {
                SockEvent::Connected { .. } => "connected".to_string(),
                SockEvent::Refused { .. } => "refused".to_string(),
                SockEvent::Accepted { .. } => "accepted".to_string(),
                SockEvent::Data { payload, .. } => format!("data:{payload}"),
                SockEvent::Datagram { payload, .. } => format!("dgram:{payload}"),
                SockEvent::Closed { .. } => "closed".to_string(),
            };
            sim.world_mut().events.push((now, node, label));
            match event {
                SockEvent::Data {
                    conn,
                    payload,
                    size,
                    ..
                } => {
                    sim.world_mut().received_payloads.push((node, payload));
                    if sim.world().echo_data {
                        // Echo back on the same connection.
                        send(sim, node, conn, size, payload + 1000).unwrap();
                    }
                }
                SockEvent::Datagram { payload, .. } => {
                    sim.world_mut().received_payloads.push((node, payload));
                }
                _ => {}
            }
        }
    }

    /// Builds a world with `machines` physical nodes and `per_machine` DSL virtual nodes each.
    fn build_world(machines: usize, per_machine: usize, config: NetworkConfig) -> TestWorld {
        let topo = TopologySpec::uniform(
            "dsl",
            machines * per_machine,
            AccessLinkClass::bittorrent_dsl(),
        );
        let mut net = Network::new(config, topo);
        let mut next = 0u32;
        for m in 0..machines {
            let mid = net.add_machine(format!("pm{m}"), VirtAddr::new(192, 168, 38, m as u8 + 1));
            for _ in 0..per_machine {
                next += 1;
                net.add_vnode(mid, VirtAddr::new(10, 0, 0, 0).offset(next), GroupId(0))
                    .unwrap();
            }
        }
        TestWorld {
            net,
            events: Vec::new(),
            received_payloads: Vec::new(),
            echo_data: false,
        }
    }

    fn remote(world: &TestWorld, node: VNodeId, port: u16) -> SocketAddr {
        SocketAddr::new(world.net.addr_of(node), port)
    }

    #[test]
    fn connect_and_exchange_data() {
        let world = build_world(2, 1, NetworkConfig::default());
        let peer = remote(&world, VNodeId(1), 6881);
        let mut sim: NetSim<TestWorld> = Simulation::with_events(world, 1);
        listen(&mut sim, VNodeId(1), 6881).unwrap();
        let conn = connect(&mut sim, VNodeId(0), peer).unwrap();
        sim.run();
        let labels: Vec<&str> = sim
            .world()
            .events
            .iter()
            .map(|(_, _, l)| l.as_str())
            .collect();
        assert!(labels.contains(&"accepted"));
        assert!(labels.contains(&"connected"));
        // Handshake takes roughly one round trip of the 30 ms + 30 ms access links.
        let connected_at = sim
            .world()
            .events
            .iter()
            .find(|(_, _, l)| l == "connected")
            .map(|(t, _, _)| *t)
            .unwrap();
        assert!(
            connected_at.as_millis() >= 120,
            "connected at {connected_at}"
        );
        assert!(
            connected_at.as_millis() < 300,
            "connected at {connected_at}"
        );

        // Now send data in both directions.
        let mut sim2 = sim;
        send(&mut sim2, VNodeId(0), conn, 1024, 7).unwrap();
        sim2.run();
        assert!(sim2.world().received_payloads.contains(&(VNodeId(1), 7)));
        let c = sim2.world_mut().net.connection(conn).unwrap();
        assert_eq!(c.state, ConnState::Established);
        assert_eq!(c.bytes_from_client, 1024);
        assert_eq!(sim2.world_mut().net.vnode(VNodeId(1)).bytes_received, 1024);
    }

    #[test]
    fn connection_refused_without_listener() {
        let world = build_world(2, 1, NetworkConfig::default());
        let peer = remote(&world, VNodeId(1), 6881);
        let mut sim: NetSim<TestWorld> = Simulation::with_events(world, 1);
        let conn = connect(&mut sim, VNodeId(0), peer).unwrap();
        sim.run();
        let labels: Vec<&str> = sim
            .world()
            .events
            .iter()
            .map(|(_, _, l)| l.as_str())
            .collect();
        assert!(labels.contains(&"refused"));
        assert!(!labels.contains(&"connected"));
        assert_eq!(
            sim.world_mut().net.connection(conn).unwrap().state,
            ConnState::Refused
        );
    }

    #[test]
    fn send_requires_established_connection() {
        let world = build_world(2, 1, NetworkConfig::default());
        let peer = remote(&world, VNodeId(1), 6881);
        let mut sim: NetSim<TestWorld> = Simulation::with_events(world, 1);
        listen(&mut sim, VNodeId(1), 6881).unwrap();
        let conn = connect(&mut sim, VNodeId(0), peer).unwrap();
        // Not yet established: the SYN has not even left.
        assert_eq!(
            send(&mut sim, VNodeId(0), conn, 10, 1),
            Err(NetError::NotEstablished(conn))
        );
        assert_eq!(
            send(&mut sim, VNodeId(0), ConnId(999), 10, 1),
            Err(NetError::UnknownConnection(ConnId(999)))
        );
    }

    #[test]
    fn oversized_message_rejected() {
        let world = build_world(2, 1, NetworkConfig::default());
        let peer = remote(&world, VNodeId(1), 6881);
        let mut sim: NetSim<TestWorld> = Simulation::with_events(world, 1);
        listen(&mut sim, VNodeId(1), 6881).unwrap();
        let conn = connect(&mut sim, VNodeId(0), peer).unwrap();
        sim.run();
        let max = sim.world_mut().net.config().max_message_bytes;
        assert_eq!(
            send(&mut sim, VNodeId(0), conn, max + 1, 1),
            Err(NetError::MessageTooLarge(max + 1))
        );
    }

    #[test]
    fn duplicate_listener_rejected() {
        let world = build_world(1, 2, NetworkConfig::default());
        let mut sim: NetSim<TestWorld> = Simulation::with_events(world, 1);
        listen(&mut sim, VNodeId(0), 6881).unwrap();
        assert_eq!(
            listen(&mut sim, VNodeId(0), 6881),
            Err(NetError::PortInUse(VNodeId(0), 6881))
        );
        // Same port on another node is fine.
        listen(&mut sim, VNodeId(1), 6881).unwrap();
    }

    #[test]
    fn close_notifies_peer() {
        let world = build_world(2, 1, NetworkConfig::default());
        let peer = remote(&world, VNodeId(1), 6881);
        let mut sim: NetSim<TestWorld> = Simulation::with_events(world, 1);
        listen(&mut sim, VNodeId(1), 6881).unwrap();
        let conn = connect(&mut sim, VNodeId(0), peer).unwrap();
        sim.run();
        close(&mut sim, VNodeId(0), conn).unwrap();
        sim.run();
        let labels: Vec<&str> = sim
            .world()
            .events
            .iter()
            .map(|(_, _, l)| l.as_str())
            .collect();
        assert!(labels.contains(&"closed"));
        assert_eq!(
            sim.world_mut().net.connection(conn).unwrap().state,
            ConnState::Closed
        );
        // Closing again is a no-op.
        close(&mut sim, VNodeId(0), conn).unwrap();
    }

    #[test]
    fn datagram_roundtrip_and_counters() {
        let world = build_world(2, 1, NetworkConfig::default());
        let peer = remote(&world, VNodeId(1), 9);
        let mut sim: NetSim<TestWorld> = Simulation::with_events(world, 1);
        send_datagram(&mut sim, VNodeId(0), 9, peer, 100, 42).unwrap();
        sim.run();
        assert!(sim.world().received_payloads.contains(&(VNodeId(1), 42)));
        let stats = sim.world_mut().net.stats();
        assert_eq!(stats.messages_delivered, 1);
        assert_eq!(stats.bytes_delivered, 100);
    }

    #[test]
    fn folded_nodes_still_see_emulated_latency() {
        // Two virtual nodes on the SAME physical machine: traffic must still traverse both
        // access links (the whole point of the decentralized emulation model).
        let world = build_world(1, 2, NetworkConfig::default());
        let peer = remote(&world, VNodeId(1), 9);
        let mut sim: NetSim<TestWorld> = Simulation::with_events(world, 1);
        send_datagram(&mut sim, VNodeId(0), 9, peer, 100, 1).unwrap();
        sim.run();
        let (t, _, _) = sim.world().events[0];
        // 30 ms up + 30 ms down plus serialization: at least 60 ms even though it never left
        // the machine.
        assert!(t.as_millis() >= 60, "delivered at {t}");
    }

    #[test]
    fn same_machine_and_cross_machine_latency_are_close() {
        // The folding-invariance property at the single-message level: an emulated DSL link
        // dominates, so crossing the real cluster network adds only a negligible amount.
        let run = |machines: usize, per_machine: usize| {
            let world = build_world(machines, per_machine, NetworkConfig::default());
            let peer = remote(&world, VNodeId(1), 9);
            let mut sim: NetSim<TestWorld> = Simulation::with_events(world, 1);
            send_datagram(&mut sim, VNodeId(0), 9, peer, 1000, 1).unwrap();
            sim.run();
            sim.world().events[0].0.as_secs_f64()
        };
        let folded = run(1, 2);
        let spread = run(2, 1);
        assert!(
            (folded - spread).abs() < 0.002,
            "folded={folded} spread={spread}"
        );
    }

    #[test]
    fn lossy_link_retransmits_reliable_data() {
        let topo =
            TopologySpec::uniform("lossy", 2, AccessLinkClass::bittorrent_dsl().with_loss(0.4));
        let mut net = Network::new(NetworkConfig::default(), topo);
        let m0 = net.add_machine("pm0", VirtAddr::new(192, 168, 38, 1));
        let m1 = net.add_machine("pm1", VirtAddr::new(192, 168, 38, 2));
        net.add_vnode(m0, VirtAddr::new(10, 0, 0, 1), GroupId(0))
            .unwrap();
        net.add_vnode(m1, VirtAddr::new(10, 0, 0, 2), GroupId(0))
            .unwrap();
        let world = TestWorld {
            net,
            events: Vec::new(),
            received_payloads: Vec::new(),
            echo_data: false,
        };
        let peer = SocketAddr::new(VirtAddr::new(10, 0, 0, 2), 6881);
        let mut sim: NetSim<TestWorld> = Simulation::with_events(world, 3);
        listen(&mut sim, VNodeId(1), 6881).unwrap();
        let conn = connect(&mut sim, VNodeId(0), peer).unwrap();
        sim.run();
        assert_eq!(
            sim.world_mut().net.connection(conn).unwrap().state,
            ConnState::Established,
            "handshake must survive 40% loss via retransmission"
        );
        for i in 0..20 {
            send(&mut sim, VNodeId(0), conn, 1000, i).unwrap();
        }
        sim.run();
        let received: Vec<u32> = sim
            .world()
            .received_payloads
            .iter()
            .filter(|(n, _)| *n == VNodeId(1))
            .map(|(_, p)| *p)
            .collect();
        assert_eq!(
            received.len(),
            20,
            "all reliable messages eventually delivered"
        );
        assert!(sim.world_mut().net.stats().retransmissions > 0);
    }

    #[test]
    fn datagrams_are_lost_on_lossy_links() {
        let topo =
            TopologySpec::uniform("lossy", 2, AccessLinkClass::bittorrent_dsl().with_loss(1.0));
        let mut net = Network::new(NetworkConfig::default(), topo);
        let m0 = net.add_machine("pm0", VirtAddr::new(192, 168, 38, 1));
        net.add_vnode(m0, VirtAddr::new(10, 0, 0, 1), GroupId(0))
            .unwrap();
        net.add_vnode(m0, VirtAddr::new(10, 0, 0, 2), GroupId(0))
            .unwrap();
        let world = TestWorld {
            net,
            events: Vec::new(),
            received_payloads: Vec::new(),
            echo_data: false,
        };
        let peer = SocketAddr::new(VirtAddr::new(10, 0, 0, 2), 9);
        let mut sim: NetSim<TestWorld> = Simulation::with_events(world, 3);
        send_datagram(&mut sim, VNodeId(0), 9, peer, 100, 1).unwrap();
        sim.run();
        assert!(sim.world().received_payloads.is_empty());
        assert_eq!(sim.world_mut().net.stats().messages_dropped, 1);
        // The unreliable drop is also visible on the dedicated datagram counter.
        assert_eq!(sim.world_mut().net.stats().datagrams_dropped, 1);
    }

    #[test]
    fn upload_bandwidth_limits_throughput() {
        // 10 x 16 KiB from a DSL node (128 kbps up): about 10.5 s of serialization.
        let world = build_world(2, 1, NetworkConfig::default());
        let peer = remote(&world, VNodeId(1), 6881);
        let mut sim: NetSim<TestWorld> = Simulation::with_events(world, 1);
        listen(&mut sim, VNodeId(1), 6881).unwrap();
        let conn = connect(&mut sim, VNodeId(0), peer).unwrap();
        sim.run();
        let start = sim.now();
        for i in 0..10 {
            send(&mut sim, VNodeId(0), conn, 16 * 1024, i).unwrap();
        }
        sim.run();
        let last = sim
            .world()
            .events
            .iter()
            .filter(|(_, n, l)| *n == VNodeId(1) && l.starts_with("data"))
            .map(|(t, _, _)| *t)
            .max()
            .unwrap();
        let elapsed = (last - start).as_secs_f64();
        let ideal = 10.0 * (16.0 * 1024.0 + 40.0) * 8.0 / 128_000.0;
        assert!(elapsed > ideal * 0.95, "elapsed={elapsed} ideal={ideal}");
        assert!(elapsed < ideal * 1.15, "elapsed={elapsed} ideal={ideal}");
    }

    #[test]
    fn download_link_is_shared_between_senders() {
        // Two uploaders at 128 kbps each cannot exceed the receiver's 2 Mbps download link, but
        // together they roughly double the throughput seen from one uploader.
        let world = build_world(3, 1, NetworkConfig::default());
        let receiver_addr = remote(&world, VNodeId(2), 6881);
        let mut sim: NetSim<TestWorld> = Simulation::with_events(world, 1);
        listen(&mut sim, VNodeId(2), 6881).unwrap();
        let c0 = connect(&mut sim, VNodeId(0), receiver_addr).unwrap();
        let c1 = connect(&mut sim, VNodeId(1), receiver_addr).unwrap();
        sim.run();
        for i in 0..5 {
            send(&mut sim, VNodeId(0), c0, 16 * 1024, i).unwrap();
            send(&mut sim, VNodeId(1), c1, 16 * 1024, 100 + i).unwrap();
        }
        sim.run();
        assert_eq!(
            sim.world()
                .received_payloads
                .iter()
                .filter(|(n, _)| *n == VNodeId(2))
                .count(),
            10
        );
        assert_eq!(
            sim.world_mut().net.vnode(VNodeId(2)).bytes_received,
            10 * 16 * 1024
        );
    }

    #[test]
    fn disabling_interception_bypasses_upload_shaping() {
        // Without the BINDIP shim the connection is attributed to the physical node's admin
        // address, so the virtual node's outgoing dummynet rule never matches and upload shaping
        // is lost — the mechanism the paper's libc modification exists to provide.
        let config = NetworkConfig {
            intercept: crate::intercept::InterceptConfig::disabled(),
            ..NetworkConfig::default()
        };
        let run = |config: NetworkConfig| {
            let world = build_world(2, 1, config);
            let peer = remote(&world, VNodeId(1), 6881);
            let mut sim: NetSim<TestWorld> = Simulation::with_events(world, 1);
            listen(&mut sim, VNodeId(1), 6881).unwrap();
            let conn = connect(&mut sim, VNodeId(0), peer).unwrap();
            sim.run();
            let start = sim.now();
            for i in 0..10 {
                send(&mut sim, VNodeId(0), conn, 16 * 1024, i).unwrap();
            }
            sim.run();
            let last = sim
                .world()
                .events
                .iter()
                .filter(|(_, n, l)| *n == VNodeId(1) && l.starts_with("data"))
                .map(|(t, _, _)| *t)
                .max()
                .unwrap();
            (last - start).as_secs_f64()
        };
        let with_shim = run(NetworkConfig::default());
        let without_shim = run(config);
        assert!(
            with_shim > 5.0 * without_shim,
            "with={with_shim} without={without_shim}"
        );
    }
}
