//! The emulated network: machines, virtual nodes, pipes, firewalls and counters.
//!
//! A [`Network`] is the passive state of the emulation data plane. It owns
//!
//! * one [`Firewall`] + NIC pipes per *physical machine* (the decentralized model of the paper:
//!   every physical node shapes the traffic of the virtual nodes it hosts),
//! * one pair of access-link pipes per *virtual node* (upload and download, as two IPFW rules),
//! * one delay pipe per (hosted source group, destination group) pair with configured latency,
//! * the connection/listener tables of the transport layer.
//!
//! The active part — walking a packet through those components with discrete events — lives in
//! [`crate::transport`].

use crate::addr::{Subnet, VirtAddr};
use crate::firewall::{Classification, Direction, Firewall, PathKeyHasher, PipeList, Rule};
use crate::iface::Interface;
use crate::intercept::InterceptConfig;
use crate::pipe::{Pipe, PipeConfig, PipeId};
use crate::proto::{CongestionController, ProtoConn, TransportConfig};
use crate::tamper::{TamperSpec, TamperState};
use crate::topology::{GroupId, GroupSpec, TopologySpec};
use p2plab_os::SyscallCostModel;
use p2plab_sim::{FxHashMap, FxHashSet, SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};
// lint:allow(nondet-hash) — every instantiation pins `BuildHasherDefault<PathKeyHasher>`, a fixed deterministic hasher
use std::collections::HashMap;
use std::hash::BuildHasherDefault;

/// Index of a physical machine in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MachineId(pub usize);

/// Index of a virtual node in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VNodeId(pub usize);

/// Identifier of a transport connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConnId(pub u64);

/// Tunables of the emulation data plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Latency added per firewall rule examined (IPFW's linear evaluation, Figure 6).
    pub per_rule_cost: SimDuration,
    /// Bandwidth of each physical machine's NIC (GridExplorer: Gigabit Ethernet).
    pub nic_bps: u64,
    /// Per-hop latency of the NIC and switch fabric.
    pub switch_latency: SimDuration,
    /// Largest message the transport accepts in one send (larger transfers must be chunked by
    /// the application, as BitTorrent does with its 16 KiB blocks).
    pub max_message_bytes: u64,
    /// Base retransmission timeout of the reliable transport.
    pub rto: SimDuration,
    /// Maximum number of transmission attempts before a reliable message is abandoned.
    pub max_attempts: u32,
    /// System-call cost model charged on connection establishment.
    pub syscalls: SyscallCostModel,
    /// libc-interception configuration (BINDIP shim).
    pub intercept: InterceptConfig,
    /// Protocol-depth configuration: MTU fragmentation, ack-bitfield reliability and the
    /// congestion controller (see [`crate::proto`]). The default is entirely inert.
    pub transport: TransportConfig,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            per_rule_cost: SimDuration::from_nanos(50),
            nic_bps: 1_000_000_000,
            switch_latency: SimDuration::from_micros(50),
            max_message_bytes: 64 * 1024,
            rto: SimDuration::from_millis(500),
            max_attempts: 16,
            syscalls: SyscallCostModel::freebsd_opteron(),
            intercept: InterceptConfig::enabled(),
            transport: TransportConfig::default(),
        }
    }
}

/// Transport-level state of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConnState {
    /// SYN sent, waiting for the handshake to complete.
    Connecting,
    /// Handshake completed; data can flow.
    Established,
    /// Closed by either side.
    Closed,
    /// Refused by the remote node (no listener).
    Refused,
}

/// A transport connection between two virtual nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Connection {
    /// Connection id.
    pub id: ConnId,
    /// Initiating endpoint (node, port).
    pub client: (VNodeId, u16),
    /// Accepting endpoint (node, port).
    pub server: (VNodeId, u16),
    /// Current state.
    pub state: ConnState,
    /// Bytes sent by the client endpoint.
    pub bytes_from_client: u64,
    /// Bytes sent by the server endpoint.
    pub bytes_from_server: u64,
    /// Time the connection became established, if it did.
    pub established_at: Option<SimTime>,
}

impl Connection {
    /// The node at the other end of the connection from `node`.
    pub fn peer_of(&self, node: VNodeId) -> VNodeId {
        if self.client.0 == node {
            self.server.0
        } else {
            self.client.0
        }
    }

    /// The local port used by `node` on this connection.
    pub fn port_of(&self, node: VNodeId) -> u16 {
        if self.client.0 == node {
            self.client.1
        } else {
            self.server.1
        }
    }
}

/// One precomputed path classification (see [`PathMemo`]).
#[derive(Debug, Clone)]
struct CachedPath {
    pipes: PipeList,
    accepted: bool,
    rules_examined: usize,
}

/// Per-machine memo of firewall classifications at `(host address, peer group)` granularity —
/// the precomputation the paper's per-packet IPFW walk invites: in a deployed topology every
/// rule is either a hosted node's own `/32` access-link rule or a group-subnet latency rule, so
/// the outgoing classification depends only on the concrete source host and the *group* of the
/// destination (and symmetrically for incoming traffic). That makes the memo a few dozen
/// entries per machine (hosted nodes × groups) — small enough to stay cache-resident, unlike a
/// full `(src, dst)` pair memo.
///
/// Soundness is checked, not assumed: the memo is rebuilt whenever the firewall's rule-set
/// version changes, and if any rule's subnet cuts *through* a group (so two peers in one group
/// could classify differently) the memo disables itself and every packet falls back to the
/// plain linear walk. Statistics are charged per packet either way, so `FirewallStats` is
/// byte-identical with and without the memo.
#[derive(Debug, Clone, Default)]
struct PathMemo {
    /// Firewall rule-set version the memo matches; 0 = never built.
    version: u64,
    /// Whether `(src host, dst group)` granularity is sound for outgoing classification.
    out_usable: bool,
    /// Whether `(src group, dst host)` granularity is sound for incoming classification.
    in_usable: bool,
    /// Outgoing paths: key packs `(src host address, dst group)`.
    out: HashMap<u64, CachedPath, BuildHasherDefault<PathKeyHasher>>,
    /// Incoming paths: key packs `(dst host address, src group)`.
    inbound: HashMap<u64, CachedPath, BuildHasherDefault<PathKeyHasher>>,
}

/// True when `subnet` never cuts through a group: for every group it either covers the whole
/// group subnet or is disjoint from it. Prefix subnets are nested-or-disjoint, so the only bad
/// case is `subnet` strictly inside a group's subnet.
fn group_uniform(subnet: Subnet, groups: &[GroupSpec]) -> bool {
    groups
        .iter()
        .all(|g| !(subnet.prefix > g.subnet.prefix && g.subnet.contains(subnet.base)))
}

fn path_key(host: VirtAddr, group: GroupId) -> u64 {
    ((host.0 as u64) << 32) | group.0 as u64
}

/// A physical machine's networking state.
#[derive(Debug, Clone)]
pub struct MachineNet {
    /// Machine name (for reports).
    pub name: String,
    /// The machine's interface with its administration address and virtual-node aliases.
    pub iface: Interface,
    /// The machine's firewall (dummynet/IPFW rules for its hosted virtual nodes).
    pub firewall: Firewall,
    /// NIC transmit pipe.
    pub nic_tx: PipeId,
    /// NIC receive pipe.
    pub nic_rx: PipeId,
    /// Groups that already have their inter-group rules installed on this machine.
    group_rules_installed: FxHashSet<GroupId>,
    /// Memoized per-path classifications (lazily rebuilt per firewall version).
    path_memo: PathMemo,
}

impl MachineNet {
    /// Rebuilds the path memo against the firewall's current rule set.
    fn refresh_path_memo(&mut self, groups: &[GroupSpec]) {
        let memo = &mut self.path_memo;
        memo.out.clear();
        memo.inbound.clear();
        let rules = self.firewall.rules();
        memo.out_usable = rules
            .iter()
            .filter(|r| r.direction != Some(Direction::In))
            .all(|r| group_uniform(r.dst, groups));
        memo.in_usable = rules
            .iter()
            .filter(|r| r.direction != Some(Direction::Out))
            .all(|r| group_uniform(r.src, groups));
        memo.version = self.firewall.version();
    }

    /// Classifies through the memo (`key` in the map picked by `direction`), walking and
    /// memoizing on first use. Firewall statistics are charged exactly as `classify` would.
    fn classify_memoized(
        &mut self,
        key: u64,
        src_addr: VirtAddr,
        dst_addr: VirtAddr,
        direction: Direction,
    ) -> Classification {
        let map = match direction {
            Direction::Out => &mut self.path_memo.out,
            Direction::In => &mut self.path_memo.inbound,
        };
        let (pipes, accepted, rules_examined) = match map.get(&key) {
            Some(c) => (c.pipes.clone(), c.accepted, c.rules_examined),
            None => {
                let (pipes, accepted, rules_examined) =
                    self.firewall.walk(src_addr, dst_addr, direction);
                map.insert(
                    key,
                    CachedPath {
                        pipes: pipes.clone(),
                        accepted,
                        rules_examined,
                    },
                );
                (pipes, accepted, rules_examined)
            }
        };
        self.firewall.count_packet(rules_examined, !accepted);
        Classification {
            pipes,
            accepted,
            rules_examined,
            evaluation_cost: self.firewall.per_rule_cost() * rules_examined as u64,
        }
    }
}

/// A virtual node's networking state.
#[derive(Debug, Clone)]
pub struct VNodeNet {
    /// The node's emulated IP address (an interface alias on its machine).
    pub addr: VirtAddr,
    /// The group the node belongs to.
    pub group: GroupId,
    /// The machine hosting the node.
    pub machine: MachineId,
    /// Access-link upload pipe.
    pub up_pipe: PipeId,
    /// Access-link download pipe.
    pub down_pipe: PipeId,
    /// Bytes sent by this node's applications.
    pub bytes_sent: u64,
    /// Bytes delivered to this node's applications.
    pub bytes_received: u64,
}

/// Global data-plane counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Messages handed to the transport.
    pub messages_sent: u64,
    /// Messages delivered to applications.
    pub messages_delivered: u64,
    /// Messages dropped (after exhausting retransmissions, or unreliable drops).
    pub messages_dropped: u64,
    /// Unreliable frames (datagrams and unreliable-lane messages) dropped by a pipe — the
    /// subset of `messages_dropped` that no retransmission ever covered.
    pub datagrams_dropped: u64,
    /// Retransmissions performed by the reliable lanes.
    pub retransmissions: u64,
    /// RPC calls that exhausted their attempts without an answer (see [`crate::rpc`]).
    pub rpc_timeouts: u64,
    /// Application bytes delivered.
    pub bytes_delivered: u64,
    /// Fragments released to the wire by the protocol layer (see [`crate::proto`]).
    pub fragments_sent: u64,
    /// Incomplete reassemblies discarded after the reassembly timeout.
    pub reassembly_timeouts: u64,
    /// Individual lost fragments retransmitted by the protocol layer (only the missing
    /// fragments are resent, never the whole message).
    pub selective_retransmits: u64,
    /// Acknowledgement frames sent by receivers on reliable lanes.
    pub acks_sent: u64,
    /// Fresh frames silently swallowed by a sender-side tamper point (see [`crate::tamper`]).
    pub tampered_drops: u64,
    /// Extra copies injected by a sender-side tamper point.
    pub tampered_duplicates: u64,
    /// Fresh frames held back by a tamper point's reply delay.
    pub tampered_delays: u64,
    /// Fresh frames transmitted by nodes marked byzantine (adversary accounting).
    pub byzantine_msgs_sent: u64,
}

/// Errors from network construction or transport calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The address is already assigned to a virtual node.
    AddressInUse(VirtAddr),
    /// The group id does not exist in the topology.
    UnknownGroup(GroupId),
    /// The machine id does not exist.
    UnknownMachine(MachineId),
    /// The virtual node id does not exist.
    UnknownVNode(VNodeId),
    /// No virtual node owns this address.
    NoRouteToHost(VirtAddr),
    /// A listener is already bound to this port.
    PortInUse(VNodeId, u16),
    /// The connection id is unknown.
    UnknownConnection(ConnId),
    /// The connection is not in a state that allows the operation.
    NotEstablished(ConnId),
    /// The message exceeds the configured maximum message size.
    MessageTooLarge(u64),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::AddressInUse(a) => write!(f, "address {a} already in use"),
            NetError::UnknownGroup(g) => write!(f, "unknown group {}", g.0),
            NetError::UnknownMachine(m) => write!(f, "unknown machine {}", m.0),
            NetError::UnknownVNode(v) => write!(f, "unknown virtual node {}", v.0),
            NetError::NoRouteToHost(a) => write!(f, "no virtual node owns {a}"),
            NetError::PortInUse(v, p) => write!(f, "port {p} already bound on vnode {}", v.0),
            NetError::UnknownConnection(c) => write!(f, "unknown connection {}", c.0),
            NetError::NotEstablished(c) => write!(f, "connection {} is not established", c.0),
            NetError::MessageTooLarge(s) => write!(f, "message of {s} bytes exceeds the maximum"),
        }
    }
}

impl std::error::Error for NetError {}

/// The emulated network state.
#[derive(Debug, Clone)]
pub struct Network {
    config: NetworkConfig,
    topology: TopologySpec,
    pipes: Vec<Pipe>,
    machines: Vec<MachineNet>,
    vnodes: Vec<VNodeNet>,
    addr_map: FxHashMap<VirtAddr, VNodeId>,
    pub(crate) listeners: FxHashSet<(VNodeId, u16)>,
    /// Connection arena: `ConnId`s are allocated sequentially, so the id doubles as the index
    /// (connections are never removed, matching real conntrack tables kept until reboot).
    pub(crate) conns: Vec<Connection>,
    next_ephemeral: u16,
    pub(crate) stats: NetStats,
    /// Protocol-layer state per connection, keyed by id. A side table (rather than fields on
    /// [`Connection`], which is `Copy` and widely passed by value) populated lazily on first
    /// protocol activity.
    pub(crate) proto: FxHashMap<ConnId, ProtoConn>,
    /// Sender-side wire-tamper state per virtual node (see [`crate::tamper`]). Empty — and
    /// therefore completely inert, drawing no randomness — unless an adversary installed it.
    pub(crate) tamper: FxHashMap<VNodeId, TamperState>,
    /// Virtual nodes marked byzantine, for `byzantine_msgs_sent` accounting.
    pub(crate) byzantine: FxHashSet<VNodeId>,
}

impl Network {
    /// Creates a network for the given topology.
    pub fn new(config: NetworkConfig, topology: TopologySpec) -> Network {
        Network {
            config,
            topology,
            pipes: Vec::new(),
            machines: Vec::new(),
            vnodes: Vec::new(),
            addr_map: FxHashMap::default(),
            listeners: FxHashSet::default(),
            conns: Vec::new(),
            next_ephemeral: 49152,
            stats: NetStats::default(),
            proto: FxHashMap::default(),
            tamper: FxHashMap::default(),
            byzantine: FxHashSet::default(),
        }
    }

    /// The data-plane configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// The topology this network was built for.
    pub fn topology(&self) -> &TopologySpec {
        &self.topology
    }

    /// Global counters.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Pre-sizes the per-entity collections for a deployment of `machines` physical machines
    /// hosting `vnodes` virtual nodes, so large deployments build without rehash/regrow churn.
    pub fn reserve(&mut self, machines: usize, vnodes: usize) {
        self.machines.reserve(machines);
        self.vnodes.reserve(vnodes);
        // Two access-link pipes per vnode, two NIC pipes per machine, plus a bounded number of
        // inter-group delay pipes.
        let groups = self.topology.groups.len();
        self.pipes
            .reserve(2 * vnodes + 2 * machines + groups * groups);
        self.addr_map.reserve(vnodes);
    }

    /// Adds a physical machine with the given administration address.
    pub fn add_machine(&mut self, name: impl Into<String>, admin_addr: VirtAddr) -> MachineId {
        let nic_tx = self.add_pipe(
            PipeConfig::shaped(self.config.nic_bps, self.config.switch_latency)
                .with_queue_limit(None),
        );
        let nic_rx = self.add_pipe(
            PipeConfig::shaped(self.config.nic_bps, SimDuration::ZERO).with_queue_limit(None),
        );
        self.machines.push(MachineNet {
            name: name.into(),
            iface: Interface::new(admin_addr),
            firewall: Firewall::new(self.config.per_rule_cost),
            nic_tx,
            nic_rx,
            group_rules_installed: FxHashSet::default(),
            path_memo: PathMemo::default(),
        });
        MachineId(self.machines.len() - 1)
    }

    /// Classifies an outgoing packet on `machine`'s firewall, through the per-machine path
    /// memo when its `(src host, dst group)` granularity is sound (see [`PathMemo`]); falls
    /// back to the plain linear walk otherwise — results and statistics are identical either
    /// way. `src` / `dst` are the transmitting and destination virtual nodes; `src_addr` may
    /// differ from `src`'s address when interception is disabled (traffic attributed to the
    /// machine's administration address), which also forces the fallback.
    pub(crate) fn classify_out(
        &mut self,
        machine: MachineId,
        src: VNodeId,
        src_addr: VirtAddr,
        dst: VNodeId,
    ) -> Classification {
        let src_is_vnode = self.vnodes[src.0].addr == src_addr;
        let dst_group = self.vnodes[dst.0].group;
        let dst_addr = self.vnodes[dst.0].addr;
        let groups = &self.topology.groups;
        let m = &mut self.machines[machine.0];
        if m.path_memo.version != m.firewall.version() {
            m.refresh_path_memo(groups);
        }
        if !src_is_vnode || !m.path_memo.out_usable {
            return m.firewall.classify(src_addr, dst_addr, Direction::Out);
        }
        m.classify_memoized(
            path_key(src_addr, dst_group),
            src_addr,
            dst_addr,
            Direction::Out,
        )
    }

    /// Incoming twin of [`classify_out`](Network::classify_out): memo key is
    /// `(dst host, src group)`.
    pub(crate) fn classify_in(
        &mut self,
        machine: MachineId,
        src: VNodeId,
        src_addr: VirtAddr,
        dst: VNodeId,
    ) -> Classification {
        let src_is_vnode = self.vnodes[src.0].addr == src_addr;
        let src_group = self.vnodes[src.0].group;
        let dst_addr = self.vnodes[dst.0].addr;
        let groups = &self.topology.groups;
        let m = &mut self.machines[machine.0];
        if m.path_memo.version != m.firewall.version() {
            m.refresh_path_memo(groups);
        }
        if !src_is_vnode || !m.path_memo.in_usable {
            return m.firewall.classify(src_addr, dst_addr, Direction::In);
        }
        m.classify_memoized(
            path_key(dst_addr, src_group),
            src_addr,
            dst_addr,
            Direction::In,
        )
    }

    /// Adds a virtual node of `group` on `machine` with address `addr`.
    ///
    /// This performs what the P2PLab deployment scripts do on each physical node: configure an
    /// interface alias for the node, create its two dummynet pipes (upload and download, from
    /// the group's access-link class), add the two corresponding IPFW rules, and — the first
    /// time a group appears on the machine — the inter-group latency rules.
    pub fn add_vnode(
        &mut self,
        machine: MachineId,
        addr: VirtAddr,
        group: GroupId,
    ) -> Result<VNodeId, NetError> {
        if group.0 >= self.topology.groups.len() {
            return Err(NetError::UnknownGroup(group));
        }
        if machine.0 >= self.machines.len() {
            return Err(NetError::UnknownMachine(machine));
        }
        if self.addr_map.contains_key(&addr) {
            return Err(NetError::AddressInUse(addr));
        }
        let link = self.topology.groups[group.0].link;
        let up_pipe = self.add_pipe(
            PipeConfig::shaped(link.up_bps, link.latency)
                .with_loss(link.loss_rate)
                .with_queue_limit(None)
                .with_condition(link.effective_condition_up()),
        );
        let down_pipe = self.add_pipe(
            PipeConfig::shaped(link.down_bps, link.latency)
                .with_loss(link.loss_rate)
                .with_queue_limit(None)
                .with_condition(link.effective_condition_down()),
        );
        let id = VNodeId(self.vnodes.len());
        {
            let m = &mut self.machines[machine.0];
            m.iface
                .add_alias(addr)
                .map_err(|_| NetError::AddressInUse(addr))?;
            m.firewall.add_rule(Rule::pipe(
                Subnet::host(addr),
                Subnet::any(),
                Direction::Out,
                up_pipe,
            ));
            m.firewall.add_rule(Rule::pipe(
                Subnet::any(),
                Subnet::host(addr),
                Direction::In,
                down_pipe,
            ));
        }
        self.install_group_rules(machine, group);
        self.vnodes.push(VNodeNet {
            addr,
            group,
            machine,
            up_pipe,
            down_pipe,
            bytes_sent: 0,
            bytes_received: 0,
        });
        self.addr_map.insert(addr, id);
        Ok(id)
    }

    /// Installs the inter-group latency rules for traffic of `group` leaving `machine`, if they
    /// are not already present.
    fn install_group_rules(&mut self, machine: MachineId, group: GroupId) {
        if self.machines[machine.0]
            .group_rules_installed
            .contains(&group)
        {
            return;
        }
        let src_subnet = self.topology.groups[group.0].subnet;
        let mut new_rules = Vec::new();
        for (other_idx, other) in self.topology.groups.iter().enumerate() {
            let other_id = GroupId(other_idx);
            if other_id == group {
                continue;
            }
            let latency = self.topology.group_latency(group, other_id);
            if latency.is_zero() {
                continue;
            }
            new_rules.push((src_subnet, other.subnet, latency));
        }
        for (src, dst, latency) in new_rules {
            let pipe = self.add_pipe(PipeConfig::delay_only(latency));
            self.machines[machine.0]
                .firewall
                .add_rule(Rule::pipe(src, dst, Direction::Out, pipe));
        }
        self.machines[machine.0].group_rules_installed.insert(group);
    }

    fn add_pipe(&mut self, config: PipeConfig) -> PipeId {
        self.pipes.push(Pipe::new(config));
        PipeId(self.pipes.len() - 1)
    }

    /// Access to a pipe.
    pub fn pipe(&self, id: PipeId) -> &Pipe {
        &self.pipes[id.0]
    }

    /// Mutable access to a pipe.
    pub fn pipe_mut(&mut self, id: PipeId) -> &mut Pipe {
        &mut self.pipes[id.0]
    }

    /// Access to a machine.
    pub fn machine(&self, id: MachineId) -> &MachineNet {
        &self.machines[id.0]
    }

    /// Mutable access to a machine.
    pub fn machine_mut(&mut self, id: MachineId) -> &mut MachineNet {
        &mut self.machines[id.0]
    }

    /// Number of machines.
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// Access to a virtual node.
    pub fn vnode(&self, id: VNodeId) -> &VNodeNet {
        &self.vnodes[id.0]
    }

    /// Mutable access to a virtual node.
    pub(crate) fn vnode_mut(&mut self, id: VNodeId) -> &mut VNodeNet {
        &mut self.vnodes[id.0]
    }

    /// Number of virtual nodes.
    pub fn vnode_count(&self) -> usize {
        self.vnodes.len()
    }

    /// Iterates over all virtual nodes.
    pub fn vnodes(&self) -> impl Iterator<Item = (VNodeId, &VNodeNet)> {
        self.vnodes.iter().enumerate().map(|(i, v)| (VNodeId(i), v))
    }

    /// Resolves an address to a virtual node.
    pub fn resolve(&self, addr: VirtAddr) -> Option<VNodeId> {
        self.addr_map.get(&addr).copied()
    }

    /// The address of a virtual node.
    pub fn addr_of(&self, id: VNodeId) -> VirtAddr {
        self.vnodes[id.0].addr
    }

    /// Looks up a connection.
    pub fn connection(&self, id: ConnId) -> Option<&Connection> {
        self.conns.get(id.0 as usize)
    }

    /// Mutable connection lookup.
    pub(crate) fn connection_mut(&mut self, id: ConnId) -> Option<&mut Connection> {
        self.conns.get_mut(id.0 as usize)
    }

    /// Whether the protocol layer (fragmentation, acks, congestion control) is switched on.
    pub fn transport_active(&self) -> bool {
        self.config.transport.active()
    }

    /// The protocol-layer state of a connection, created on first access with the configured
    /// congestion controller.
    pub(crate) fn proto_mut(&mut self, id: ConnId) -> &mut ProtoConn {
        let kind = self.config.transport.congestion;
        self.proto.entry(id).or_insert_with(|| ProtoConn::new(kind))
    }

    /// Mean congestion window over every direction of every connection with protocol state,
    /// in bytes (`None` when no protocol state exists — e.g. the legacy path). The metric
    /// behind the recorder's `cwnd_mean_bytes` time series.
    pub fn cwnd_mean_bytes(&self) -> Option<u64> {
        let mut sum = 0u128;
        let mut n = 0u128;
        for conn in self.proto.values() {
            for half in &conn.halves {
                sum += u128::from(half.cc.cwnd_bytes());
                n += 1;
            }
        }
        (n > 0).then(|| u64::try_from(sum / n).unwrap_or(u64::MAX))
    }

    /// Installs a sender-side wire-tamper point on `node` (see [`crate::tamper`]): every fresh
    /// frame the node transmits is run through `spec` using `rng` (a stream split off the
    /// adversary's seed, never the simulation's global stream). Inert specs are ignored, so an
    /// adversary-free network keeps an empty tamper map and the data plane stays byte-frozen.
    pub fn set_tamper(&mut self, node: VNodeId, spec: TamperSpec, rng: SimRng) {
        if !spec.is_noop() {
            self.tamper.insert(node, TamperState { spec, rng });
        }
    }

    /// Marks `node` as byzantine for the `byzantine_msgs_sent` counter. Accounting only — the
    /// node's actual misbehavior comes from its tamper point and its application behavior.
    pub fn mark_byzantine(&mut self, node: VNodeId) {
        self.byzantine.insert(node);
    }

    /// Whether `node` was marked byzantine.
    pub fn is_byzantine(&self, node: VNodeId) -> bool {
        self.byzantine.contains(&node)
    }

    /// True if any node carries a tamper point or byzantine mark.
    pub fn adversary_active(&self) -> bool {
        !self.tamper.is_empty() || !self.byzantine.is_empty()
    }

    /// Number of connections ever created.
    pub fn connection_count(&self) -> usize {
        self.conns.len()
    }

    /// True if a listener is bound on `(node, port)`.
    pub fn is_listening(&self, node: VNodeId, port: u16) -> bool {
        self.listeners.contains(&(node, port))
    }

    /// The ports currently bound on `node`, in arbitrary order (an endpoint inspection helper;
    /// O(total listeners), not for hot paths).
    pub fn bound_ports(&self, node: VNodeId) -> impl Iterator<Item = u16> + '_ {
        self.listeners
            .iter()
            .filter(move |(n, _)| *n == node)
            .map(|&(_, p)| p)
    }

    /// The connections `node` participates in, in allocation order (an endpoint inspection
    /// helper; O(total connections), not for hot paths).
    pub fn connections_of(&self, node: VNodeId) -> impl Iterator<Item = &Connection> + '_ {
        self.conns
            .iter()
            .filter(move |c| c.client.0 == node || c.server.0 == node)
    }

    /// Total application bytes received over all virtual nodes (the metric of Figure 9).
    pub fn total_bytes_received(&self) -> u64 {
        self.vnodes.iter().map(|v| v.bytes_received).sum()
    }

    /// Total rules configured over all machines (the scalability driver of Figure 6).
    pub fn total_rule_count(&self) -> usize {
        self.machines.iter().map(|m| m.firewall.rule_count()).sum()
    }

    pub(crate) fn allocate_conn(
        &mut self,
        client: (VNodeId, u16),
        server: (VNodeId, u16),
    ) -> ConnId {
        let id = ConnId(self.conns.len() as u64);
        self.conns.push(Connection {
            id,
            client,
            server,
            state: ConnState::Connecting,
            bytes_from_client: 0,
            bytes_from_server: 0,
            established_at: None,
        });
        id
    }

    pub(crate) fn allocate_ephemeral_port(&mut self) -> u16 {
        let p = self.next_ephemeral;
        self.next_ephemeral = if self.next_ephemeral == u16::MAX {
            49152
        } else {
            self.next_ephemeral + 1
        };
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::AccessLinkClass;

    fn dsl_network(n_machines: usize, vnodes_per_machine: usize) -> Network {
        let topo = TopologySpec::uniform(
            "dsl",
            n_machines * vnodes_per_machine,
            AccessLinkClass::bittorrent_dsl(),
        );
        let mut net = Network::new(NetworkConfig::default(), topo);
        let mut next = 0u32;
        for m in 0..n_machines {
            let mid = net.add_machine(format!("node{m}"), VirtAddr::new(192, 168, 38, m as u8 + 1));
            for _ in 0..vnodes_per_machine {
                next += 1;
                let addr = VirtAddr::new(10, 0, 0, 0).offset(next);
                net.add_vnode(mid, addr, GroupId(0)).unwrap();
            }
        }
        net
    }

    #[test]
    fn vnode_registration_creates_rules_and_aliases() {
        let net = dsl_network(2, 10);
        assert_eq!(net.vnode_count(), 20);
        assert_eq!(net.machine_count(), 2);
        // Two rules per hosted vnode, no group rules in a single-group topology.
        assert_eq!(net.machine(MachineId(0)).firewall.rule_count(), 20);
        assert_eq!(net.machine(MachineId(0)).iface.alias_count(), 10);
        assert_eq!(net.total_rule_count(), 40);
        // Addresses resolve to their vnodes.
        let addr = net.addr_of(VNodeId(5));
        assert_eq!(net.resolve(addr), Some(VNodeId(5)));
        assert_eq!(net.resolve(VirtAddr::new(10, 200, 0, 1)), None);
    }

    #[test]
    fn duplicate_address_rejected() {
        let topo = TopologySpec::uniform("dsl", 10, AccessLinkClass::bittorrent_dsl());
        let mut net = Network::new(NetworkConfig::default(), topo);
        let m = net.add_machine("node0", VirtAddr::new(192, 168, 38, 1));
        let addr = VirtAddr::new(10, 0, 0, 1);
        net.add_vnode(m, addr, GroupId(0)).unwrap();
        assert_eq!(
            net.add_vnode(m, addr, GroupId(0)),
            Err(NetError::AddressInUse(addr))
        );
    }

    #[test]
    fn unknown_group_and_machine_rejected() {
        let topo = TopologySpec::uniform("dsl", 10, AccessLinkClass::bittorrent_dsl());
        let mut net = Network::new(NetworkConfig::default(), topo);
        let m = net.add_machine("node0", VirtAddr::new(192, 168, 38, 1));
        assert_eq!(
            net.add_vnode(m, VirtAddr::new(10, 0, 0, 1), GroupId(7)),
            Err(NetError::UnknownGroup(GroupId(7)))
        );
        assert_eq!(
            net.add_vnode(MachineId(9), VirtAddr::new(10, 0, 0, 1), GroupId(0)),
            Err(NetError::UnknownMachine(MachineId(9)))
        );
    }

    #[test]
    fn group_rules_installed_once_per_group_per_machine() {
        let topo = TopologySpec::paper_figure7();
        let mut net = Network::new(NetworkConfig::default(), topo);
        let m = net.add_machine("node0", VirtAddr::new(192, 168, 38, 1));
        // Host two vnodes of the 10.1.3.0/24 group (group 2 in paper_figure7 construction).
        let g = net
            .topology()
            .group_of("10.1.3.1".parse().unwrap())
            .unwrap();
        net.add_vnode(m, "10.1.3.1".parse().unwrap(), g).unwrap();
        net.add_vnode(m, "10.1.3.2".parse().unwrap(), g).unwrap();
        // 2 vnodes x 2 rules + 4 group rules (to 10.1.1, 10.1.2, 10.2, 10.3) = 8.
        assert_eq!(net.machine(m).firewall.rule_count(), 8);
    }

    #[test]
    fn figure7_rule_count_for_mixed_machine() {
        // A machine hosting vnodes from two groups gets both groups' latency rules.
        let topo = TopologySpec::paper_figure7();
        let mut net = Network::new(NetworkConfig::default(), topo);
        let m = net.add_machine("node0", VirtAddr::new(192, 168, 38, 1));
        let g1 = net
            .topology()
            .group_of("10.1.3.1".parse().unwrap())
            .unwrap();
        let g2 = net
            .topology()
            .group_of("10.2.0.1".parse().unwrap())
            .unwrap();
        net.add_vnode(m, "10.1.3.1".parse().unwrap(), g1).unwrap();
        net.add_vnode(m, "10.2.0.1".parse().unwrap(), g2).unwrap();
        // 4 vnode rules + 4 group rules for 10.1.3 + 4 group rules for 10.2 = 12.
        assert_eq!(net.machine(m).firewall.rule_count(), 12);
    }

    #[test]
    fn ephemeral_ports_wrap() {
        let topo = TopologySpec::uniform("dsl", 1, AccessLinkClass::bittorrent_dsl());
        let mut net = Network::new(NetworkConfig::default(), topo);
        let first = net.allocate_ephemeral_port();
        assert_eq!(first, 49152);
        net.next_ephemeral = u16::MAX;
        assert_eq!(net.allocate_ephemeral_port(), u16::MAX);
        assert_eq!(net.allocate_ephemeral_port(), 49152);
    }

    #[test]
    fn connection_peer_lookup() {
        let c = Connection {
            id: ConnId(1),
            client: (VNodeId(3), 50000),
            server: (VNodeId(7), 6881),
            state: ConnState::Established,
            bytes_from_client: 0,
            bytes_from_server: 0,
            established_at: None,
        };
        assert_eq!(c.peer_of(VNodeId(3)), VNodeId(7));
        assert_eq!(c.peer_of(VNodeId(7)), VNodeId(3));
        assert_eq!(c.port_of(VNodeId(3)), 50000);
        assert_eq!(c.port_of(VNodeId(7)), 6881);
    }
}
