//! IPFW-style firewall with linear rule evaluation.
//!
//! P2PLab configures the emulated topology as IPFW rules on every physical node: two per hosted
//! virtual node (incoming and outgoing access-link pipes) plus one per (source group, destination
//! group) latency pipe. IPFW evaluates rules **linearly**, which the paper identifies as the main
//! scalability limit (Figure 6: ping RTT grows linearly with the number of rules). The model
//! here keeps both behaviours: packets are matched against rules in order, every rule examined
//! costs a fixed amount of added latency, and — like dummynet with `net.inet.ip.fw.one_pass=0` —
//! a packet that matched a pipe rule continues down the rule list, so it can traverse both its
//! access-link pipe and a group-latency pipe.
//!
//! The **emulated** cost stays linear, but the **simulator's** per-packet cost must not be:
//! the firewall exposes a [`version`](Firewall::version) counter (bumped on every rule change)
//! and an uncounted [`walk`](Firewall::walk) so that the network layer can precompute the
//! classification of each (source host, destination group) path once per rule-set version and
//! charge later packets from that memo — see `Network::classify_out` / `Network::classify_in`
//! in [`crate::network`]. `classify` itself stays the plain linear walk.

use crate::addr::{Subnet, VirtAddr};
use crate::pipe::PipeId;
use p2plab_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::hash::Hasher;
use std::ops::Deref;

/// Direction of a packet relative to the physical node evaluating the rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Leaving the physical node.
    Out,
    /// Entering the physical node.
    In,
}

/// What a matching rule does with the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuleAction {
    /// Send the packet through a dummynet pipe, then keep evaluating rules.
    Pipe(PipeId),
    /// Accept the packet and stop evaluating.
    Allow,
    /// Drop the packet and stop evaluating.
    Deny,
}

/// One firewall rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Source subnet the rule matches.
    pub src: Subnet,
    /// Destination subnet the rule matches.
    pub dst: Subnet,
    /// Direction the rule matches, or `None` for both.
    pub direction: Option<Direction>,
    /// Action on match.
    pub action: RuleAction,
}

impl Rule {
    /// A rule sending traffic from `src` to `dst` (in the given direction) through `pipe`.
    pub fn pipe(src: Subnet, dst: Subnet, direction: Direction, pipe: PipeId) -> Rule {
        Rule {
            src,
            dst,
            direction: Some(direction),
            action: RuleAction::Pipe(pipe),
        }
    }

    /// A rule that never matches any real packet; used to reproduce the Figure 6 rule-count
    /// scaling experiment (the paper inserts large numbers of rules the ping traffic must scan).
    pub fn dummy() -> Rule {
        // 240.0.0.0/4 is reserved space never assigned to virtual nodes.
        let unused = Subnet::new(VirtAddr::new(240, 0, 0, 0), 4);
        Rule {
            src: unused,
            dst: unused,
            direction: None,
            action: RuleAction::Allow,
        }
    }

    fn matches(&self, src: VirtAddr, dst: VirtAddr, direction: Direction) -> bool {
        if let Some(d) = self.direction {
            if d != direction {
                return false;
            }
        }
        self.src.contains(src) && self.dst.contains(dst)
    }
}

/// A small inline list of pipes a packet traverses. Real classifications are one or two pipes
/// (access link, plus at most a group-latency pipe), so the common case lives on the stack and
/// copying a memoized classification allocates nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct PipeList {
    len: u8,
    inline: [PipeId; 4],
    /// Overflow for pathological rule sets with more than four matching pipe rules; when used,
    /// it holds the *entire* list (inline entries are copied over on the first spill).
    spill: Vec<PipeId>,
}

impl Default for PipeList {
    fn default() -> Self {
        PipeList {
            len: 0,
            inline: [PipeId(0); 4],
            spill: Vec::new(),
        }
    }
}

impl PipeList {
    fn push(&mut self, pipe: PipeId) {
        if self.spill.is_empty() && (self.len as usize) < self.inline.len() {
            self.inline[self.len as usize] = pipe;
            self.len += 1;
        } else {
            if self.spill.is_empty() {
                self.spill
                    .extend_from_slice(&self.inline[..self.len as usize]);
            }
            self.spill.push(pipe);
        }
    }
}

impl Deref for PipeList {
    type Target = [PipeId];
    fn deref(&self) -> &[PipeId] {
        if self.spill.is_empty() {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }
}

impl<'a> IntoIterator for &'a PipeList {
    type Item = PipeId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, PipeId>>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter().copied()
    }
}

/// Result of classifying one packet against a firewall.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// Pipes the packet must traverse, in rule order.
    pub pipes: PipeList,
    /// Whether the packet is ultimately accepted (false if a Deny rule matched).
    pub accepted: bool,
    /// Number of rules examined (the linear-evaluation cost driver).
    pub rules_examined: usize,
    /// Latency added by rule evaluation itself.
    pub evaluation_cost: SimDuration,
}

/// Counters kept by the firewall.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FirewallStats {
    /// Packets classified.
    pub packets: u64,
    /// Total rules examined over all packets.
    pub rules_examined: u64,
    /// Packets denied.
    pub denied: u64,
}

/// A fast, deterministic hasher for packed `u64` path keys (used by the network layer's
/// per-machine path memo). One multiply-xor round is plenty — SipHash would dominate the (hot)
/// classification lookup otherwise.
#[derive(Default)]
pub(crate) struct PathKeyHasher(u64);

impl Hasher for PathKeyHasher {
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("path keys hash through write_u64");
    }

    fn write_u64(&mut self, v: u64) {
        // splitmix64-style finalizer: full avalanche on the packed key.
        let mut z = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = z ^ (z >> 31);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// An ordered list of rules evaluated linearly, as IPFW does.
#[derive(Debug, Clone)]
pub struct Firewall {
    rules: Vec<Rule>,
    per_rule_cost: SimDuration,
    stats: FirewallStats,
    /// Bumped on every rule mutation; memo layers above compare against it.
    version: u64,
}

impl Firewall {
    /// Creates an empty firewall. `per_rule_cost` is the latency each examined rule adds
    /// (IPFW walks the list for every packet).
    pub fn new(per_rule_cost: SimDuration) -> Firewall {
        Firewall {
            rules: Vec::new(),
            per_rule_cost,
            stats: FirewallStats::default(),
            version: 1,
        }
    }

    /// The rule-set version: bumped on every rule change. A memoized classification computed
    /// at version `v` is valid exactly while `version()` still returns `v`.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The latency each examined rule adds.
    pub fn per_rule_cost(&self) -> SimDuration {
        self.per_rule_cost
    }

    /// Appends a rule and returns its index.
    pub fn add_rule(&mut self, rule: Rule) -> usize {
        self.version += 1;
        self.rules.push(rule);
        self.rules.len() - 1
    }

    /// Appends `count` never-matching rules (Figure 6 experiment).
    pub fn add_dummy_rules(&mut self, count: usize) {
        self.version += 1;
        self.rules.extend(std::iter::repeat_n(Rule::dummy(), count));
    }

    /// Removes all rules.
    pub fn clear(&mut self) {
        self.version += 1;
        self.rules.clear();
    }

    /// Number of configured rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// The configured rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Firewall counters.
    pub fn stats(&self) -> FirewallStats {
        self.stats
    }

    /// Classifies a packet: walks the rule list in order, collecting every matching pipe, until
    /// a terminal Allow/Deny rule matches or the list ends (packets are accepted by default, as
    /// P2PLab's generated rule sets end with an implicit allow).
    pub fn classify(
        &mut self,
        src: VirtAddr,
        dst: VirtAddr,
        direction: Direction,
    ) -> Classification {
        let (pipes, accepted, rules_examined) = self.walk(src, dst, direction);
        self.count_packet(rules_examined, !accepted);
        Classification {
            pipes,
            accepted,
            rules_examined,
            evaluation_cost: self.per_rule_cost * rules_examined as u64,
        }
    }

    /// The linear rule walk alone — no statistics update. This is what the network layer's
    /// path memo runs once per rule-set version; [`count_packet`](Firewall::count_packet)
    /// charges each later packet so the statistics stay identical to per-packet walking.
    pub fn walk(
        &self,
        src: VirtAddr,
        dst: VirtAddr,
        direction: Direction,
    ) -> (PipeList, bool, usize) {
        let mut pipes = PipeList::default();
        let mut examined = 0;
        let mut accepted = true;
        for rule in &self.rules {
            examined += 1;
            if !rule.matches(src, dst, direction) {
                continue;
            }
            match rule.action {
                RuleAction::Pipe(p) => pipes.push(p),
                RuleAction::Allow => break,
                RuleAction::Deny => {
                    accepted = false;
                    break;
                }
            }
        }
        (pipes, accepted, examined)
    }

    /// Accounts one classified packet in the firewall statistics (the memoized path in the
    /// network layer calls this instead of re-walking).
    pub fn count_packet(&mut self, rules_examined: usize, denied: bool) {
        self.stats.packets += 1;
        self.stats.rules_examined += rules_examined as u64;
        if denied {
            self.stats.denied += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subnet(s: &str) -> Subnet {
        s.parse().unwrap()
    }

    fn addr(s: &str) -> VirtAddr {
        s.parse().unwrap()
    }

    fn paper_firewall() -> Firewall {
        // The rule set of the physical node hosting 10.1.3.207 in the paper's Figure 7 example.
        let mut fw = Firewall::new(SimDuration::from_nanos(100));
        fw.add_rule(Rule::pipe(
            subnet("10.1.3.207/32"),
            Subnet::any(),
            Direction::Out,
            PipeId(0),
        ));
        fw.add_rule(Rule::pipe(
            Subnet::any(),
            subnet("10.1.3.207/32"),
            Direction::In,
            PipeId(1),
        ));
        fw.add_rule(Rule::pipe(
            subnet("10.1.3.0/24"),
            subnet("10.1.1.0/24"),
            Direction::Out,
            PipeId(2),
        ));
        fw.add_rule(Rule::pipe(
            subnet("10.1.3.0/24"),
            subnet("10.1.2.0/24"),
            Direction::Out,
            PipeId(3),
        ));
        fw.add_rule(Rule::pipe(
            subnet("10.1.0.0/16"),
            subnet("10.2.0.0/16"),
            Direction::Out,
            PipeId(4),
        ));
        fw.add_rule(Rule::pipe(
            subnet("10.1.0.0/16"),
            subnet("10.3.0.0/16"),
            Direction::Out,
            PipeId(5),
        ));
        fw
    }

    #[test]
    fn packet_traverses_access_and_group_pipes() {
        let mut fw = paper_firewall();
        // 10.1.3.207 -> 10.2.2.117: outgoing access pipe + 10.1/16 -> 10.2/16 latency pipe.
        let c = fw.classify(addr("10.1.3.207"), addr("10.2.2.117"), Direction::Out);
        assert_eq!(&c.pipes[..], [PipeId(0), PipeId(4)]);
        assert!(c.accepted);
        assert_eq!(c.rules_examined, 6);
    }

    #[test]
    fn incoming_packet_only_hits_download_pipe() {
        let mut fw = paper_firewall();
        let c = fw.classify(addr("10.2.2.117"), addr("10.1.3.207"), Direction::In);
        assert_eq!(&c.pipes[..], [PipeId(1)]);
    }

    #[test]
    fn intra_group_traffic_hits_local_latency_rule() {
        let mut fw = paper_firewall();
        let c = fw.classify(addr("10.1.3.207"), addr("10.1.1.5"), Direction::Out);
        assert_eq!(&c.pipes[..], [PipeId(0), PipeId(2)]);
    }

    #[test]
    fn allow_rule_terminates_evaluation() {
        let mut fw = Firewall::new(SimDuration::from_nanos(100));
        fw.add_rule(Rule {
            src: Subnet::any(),
            dst: Subnet::any(),
            direction: None,
            action: RuleAction::Allow,
        });
        fw.add_rule(Rule::pipe(
            Subnet::any(),
            Subnet::any(),
            Direction::Out,
            PipeId(9),
        ));
        let c = fw.classify(addr("10.0.0.1"), addr("10.0.0.2"), Direction::Out);
        assert!(c.pipes.is_empty());
        assert_eq!(c.rules_examined, 1);
    }

    #[test]
    fn deny_rule_rejects() {
        let mut fw = Firewall::new(SimDuration::from_nanos(100));
        fw.add_rule(Rule {
            src: subnet("10.9.0.0/16"),
            dst: Subnet::any(),
            direction: None,
            action: RuleAction::Deny,
        });
        let c = fw.classify(addr("10.9.1.1"), addr("10.0.0.2"), Direction::Out);
        assert!(!c.accepted);
        assert_eq!(fw.stats().denied, 1);
    }

    #[test]
    fn evaluation_cost_scales_linearly_with_rule_count() {
        // The mechanism behind Figure 6.
        let mut fw = Firewall::new(SimDuration::from_nanos(100));
        fw.add_dummy_rules(10_000);
        fw.add_rule(Rule::pipe(
            Subnet::any(),
            Subnet::any(),
            Direction::Out,
            PipeId(0),
        ));
        let c = fw.classify(addr("10.0.0.1"), addr("10.0.0.2"), Direction::Out);
        assert_eq!(c.rules_examined, 10_001);
        assert_eq!(c.evaluation_cost, SimDuration::from_nanos(100) * 10_001);

        let mut small = Firewall::new(SimDuration::from_nanos(100));
        small.add_rule(Rule::pipe(
            Subnet::any(),
            Subnet::any(),
            Direction::Out,
            PipeId(0),
        ));
        let c_small = small.classify(addr("10.0.0.1"), addr("10.0.0.2"), Direction::Out);
        assert!(c.evaluation_cost > c_small.evaluation_cost * 5_000);
    }

    #[test]
    fn dummy_rules_never_match_vnode_traffic() {
        let mut fw = Firewall::new(SimDuration::ZERO);
        fw.add_dummy_rules(100);
        let c = fw.classify(addr("10.1.1.1"), addr("10.2.2.2"), Direction::Out);
        assert!(c.pipes.is_empty());
        assert!(c.accepted);
        assert_eq!(c.rules_examined, 100);
    }

    #[test]
    fn version_bumps_on_rule_changes_and_classify_stays_exact() {
        // A cached path must re-walk after the rule list changes: first a plain pipe rule,
        // then a Deny inserted behind it that flips the verdict.
        let mut fw = Firewall::new(SimDuration::from_nanos(100));
        fw.add_rule(Rule::pipe(
            Subnet::any(),
            Subnet::any(),
            Direction::Out,
            PipeId(0),
        ));
        let (src, dst) = (addr("10.0.0.1"), addr("10.0.0.2"));
        let v0 = fw.version();
        let first = fw.classify(src, dst, Direction::Out);
        let second = fw.classify(src, dst, Direction::Out);
        assert_eq!(first, second);
        assert_eq!(fw.version(), v0, "classification must not bump the version");
        fw.add_rule(Rule {
            src: Subnet::any(),
            dst: Subnet::any(),
            direction: None,
            action: RuleAction::Deny,
        });
        let third = fw.classify(src, dst, Direction::Out);
        assert!(!third.accepted);
        assert_eq!(third.rules_examined, 2);
        assert!(fw.version() > v0, "rule change must bump the version");
        assert_eq!(fw.stats().packets, 3);
        assert_eq!(fw.stats().denied, 1);
    }

    #[test]
    fn directions_classify_independently() {
        let mut fw = paper_firewall();
        let out = fw.classify(addr("10.1.3.207"), addr("10.2.2.117"), Direction::Out);
        let inward = fw.classify(addr("10.1.3.207"), addr("10.2.2.117"), Direction::In);
        assert_ne!(&out.pipes[..], &inward.pipes[..]);
        // And hits return the same answers.
        assert_eq!(
            fw.classify(addr("10.1.3.207"), addr("10.2.2.117"), Direction::Out),
            out
        );
        assert_eq!(
            fw.classify(addr("10.1.3.207"), addr("10.2.2.117"), Direction::In),
            inward
        );
    }

    #[test]
    fn pipe_list_spills_past_four_entries_in_order() {
        let mut fw = Firewall::new(SimDuration::ZERO);
        for i in 0..7 {
            fw.add_rule(Rule::pipe(
                Subnet::any(),
                Subnet::any(),
                Direction::Out,
                PipeId(i),
            ));
        }
        let c = fw.classify(addr("10.0.0.1"), addr("10.0.0.2"), Direction::Out);
        let expected: Vec<PipeId> = (0..7).map(PipeId).collect();
        assert_eq!(&c.pipes[..], expected.as_slice());
        // A hit reproduces the spilled list too.
        let again = fw.classify(addr("10.0.0.1"), addr("10.0.0.2"), Direction::Out);
        assert_eq!(&again.pipes[..], expected.as_slice());
    }

    #[test]
    fn stats_accumulate() {
        let mut fw = paper_firewall();
        for _ in 0..5 {
            fw.classify(addr("10.1.3.207"), addr("10.2.2.117"), Direction::Out);
        }
        assert_eq!(fw.stats().packets, 5);
        assert_eq!(fw.stats().rules_examined, 30);
    }
}
