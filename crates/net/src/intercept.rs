//! The libc interception shim (BINDIP).
//!
//! P2PLab gives each process its network identity by modifying the FreeBSD C library: when the
//! `BINDIP` environment variable is set, `bind()` is rewritten to the configured address, and
//! `connect()` / `listen()` first perform a `bind()` to that address (ignoring the error if the
//! application had already bound the socket). The cost is one extra system call per
//! `connect()`/`listen()` — measured in the paper as 10.22 µs vs 10.79 µs per local
//! connect/disconnect cycle.
//!
//! In the reproduction, the shim decides (a) which source address a virtual node's connections
//! carry — its alias when interception is on, the physical machine's administration address when
//! it is off — and (b) how much system-call time connection establishment costs. Disabling it
//! shows why it is needed: traffic is then attributed to the physical node and bypasses the
//! per-virtual-node dummynet rules.

use crate::addr::VirtAddr;
use p2plab_os::{Syscall, SyscallCostModel};
use p2plab_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Configuration of the libc interception layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterceptConfig {
    /// Whether the modified libc (BINDIP) is active.
    pub enabled: bool,
}

impl InterceptConfig {
    /// The interception shim is installed (P2PLab's normal mode).
    pub fn enabled() -> InterceptConfig {
        InterceptConfig { enabled: true }
    }

    /// No interception: processes keep the default network identity of the physical node.
    pub fn disabled() -> InterceptConfig {
        InterceptConfig { enabled: false }
    }

    /// The source address a virtual node's traffic carries.
    pub fn source_addr(&self, vnode_alias: VirtAddr, machine_admin: VirtAddr) -> VirtAddr {
        if self.enabled {
            vnode_alias
        } else {
            machine_admin
        }
    }

    /// The system-call sequence one `connect()` performs from the application's point of view.
    pub fn connect_syscalls(&self) -> &'static [Syscall] {
        if self.enabled {
            &[Syscall::Socket, Syscall::Bind, Syscall::Connect]
        } else {
            &[Syscall::Socket, Syscall::Connect]
        }
    }

    /// The system-call sequence one passive open (`listen()`) performs.
    pub fn listen_syscalls(&self) -> &'static [Syscall] {
        if self.enabled {
            &[
                Syscall::Socket,
                Syscall::Bind,
                Syscall::Bind,
                Syscall::Listen,
            ]
        } else {
            &[Syscall::Socket, Syscall::Bind, Syscall::Listen]
        }
    }

    /// CPU time charged on the initiating side of a connection.
    pub fn connect_cost(&self, model: &SyscallCostModel) -> SimDuration {
        model.cost_of_sequence(self.connect_syscalls())
    }

    /// CPU time charged when setting up a listener.
    pub fn listen_cost(&self, model: &SyscallCostModel) -> SimDuration {
        model.cost_of_sequence(self.listen_syscalls())
    }

    /// The full connect/disconnect microbenchmark of the paper (client + server side of a local
    /// connection), in the current mode.
    pub fn connect_cycle_cost(&self, model: &SyscallCostModel) -> SimDuration {
        if self.enabled {
            model.intercepted_connect_cycle()
        } else {
            model.plain_connect_cycle()
        }
    }
}

impl Default for InterceptConfig {
    fn default() -> Self {
        InterceptConfig::enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interception_rewrites_source_address() {
        let alias = VirtAddr::new(10, 0, 0, 7);
        let admin = VirtAddr::new(192, 168, 38, 1);
        assert_eq!(InterceptConfig::enabled().source_addr(alias, admin), alias);
        assert_eq!(InterceptConfig::disabled().source_addr(alias, admin), admin);
    }

    #[test]
    fn interception_adds_exactly_one_bind_to_connect() {
        let on = InterceptConfig::enabled();
        let off = InterceptConfig::disabled();
        assert_eq!(
            on.connect_syscalls().len(),
            off.connect_syscalls().len() + 1
        );
        assert!(on.connect_syscalls().contains(&Syscall::Bind));
        assert!(!off.connect_syscalls().contains(&Syscall::Bind));
    }

    #[test]
    fn connect_cost_overhead_is_small() {
        let model = SyscallCostModel::freebsd_opteron();
        let on = InterceptConfig::enabled().connect_cost(&model);
        let off = InterceptConfig::disabled().connect_cost(&model);
        assert!(on > off);
        let overhead = (on - off).as_nanos() as f64 / off.as_nanos() as f64;
        assert!(overhead < 0.15, "overhead={overhead}");
    }

    #[test]
    fn cycle_cost_matches_paper_table() {
        let model = SyscallCostModel::freebsd_opteron();
        let plain = InterceptConfig::disabled().connect_cycle_cost(&model);
        let intercepted = InterceptConfig::enabled().connect_cycle_cost(&model);
        assert!((plain.as_nanos() as f64 / 1000.0 - 10.22).abs() < 0.35);
        assert!((intercepted.as_nanos() as f64 / 1000.0 - 10.79).abs() < 0.35);
    }

    #[test]
    fn listen_keeps_existing_bind_and_adds_one() {
        let on = InterceptConfig::enabled();
        let binds = on
            .listen_syscalls()
            .iter()
            .filter(|&&c| c == Syscall::Bind)
            .count();
        assert_eq!(binds, 2, "the application's own bind plus the shim's");
    }
}
