//! Topology description: access-link classes, node groups and inter-group latency.
//!
//! P2PLab's network model is deliberately edge-centric: what matters to a peer-to-peer node is
//! the link between the node and its ISP (bandwidth, latency, loss), plus coarse locality
//! expressed as latency between *groups* of nodes (same ISP, same country, same continent). A
//! [`TopologySpec`] captures exactly that, and is compiled by the deployment layer into per-
//! machine dummynet pipes and IPFW rules.

use crate::addr::{Subnet, VirtAddr};
use crate::proto::LinkCondition;
use p2plab_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a node group within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GroupId(pub usize);

/// The access link between a node and its ISP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessLinkClass {
    /// Download (ISP -> node) bandwidth in bits per second.
    pub down_bps: u64,
    /// Upload (node -> ISP) bandwidth in bits per second.
    pub up_bps: u64,
    /// One-way latency added on each direction of the access link.
    pub latency: SimDuration,
    /// Packet loss rate on the access link.
    pub loss_rate: f64,
    /// Optional link conditioner (jitter, reordering, duplication, burst loss) applied to both
    /// directions of the access link.
    pub condition: Option<LinkCondition>,
    /// Optional conditioner applied to the download (ISP -> node) direction only. Takes
    /// precedence over `condition` on that direction.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub condition_down: Option<LinkCondition>,
    /// Optional conditioner applied to the upload (node -> ISP) direction only. Takes
    /// precedence over `condition` on that direction.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub condition_up: Option<LinkCondition>,
}

impl AccessLinkClass {
    /// An asymmetric link.
    pub fn new(down_bps: u64, up_bps: u64, latency: SimDuration) -> AccessLinkClass {
        AccessLinkClass {
            down_bps,
            up_bps,
            latency,
            loss_rate: 0.0,
            condition: None,
            condition_down: None,
            condition_up: None,
        }
    }

    /// A symmetric link.
    pub fn symmetric(bps: u64, latency: SimDuration) -> AccessLinkClass {
        AccessLinkClass::new(bps, bps, latency)
    }

    /// Adds a loss rate.
    pub fn with_loss(mut self, loss_rate: f64) -> AccessLinkClass {
        assert!((0.0..=1.0).contains(&loss_rate));
        self.loss_rate = loss_rate;
        self
    }

    /// Stacks a link conditioner on both directions of the access link. Inert conditioners
    /// are normalized to `None`.
    pub fn with_condition(mut self, condition: Option<LinkCondition>) -> AccessLinkClass {
        self.condition = condition.filter(|c| !c.is_noop());
        self
    }

    /// Stacks a conditioner on the download direction only (asymmetric degradation). Inert
    /// conditioners are normalized to `None`.
    pub fn with_condition_down(mut self, condition: Option<LinkCondition>) -> AccessLinkClass {
        self.condition_down = condition.filter(|c| !c.is_noop());
        self
    }

    /// Stacks a conditioner on the upload direction only (asymmetric degradation). Inert
    /// conditioners are normalized to `None`.
    pub fn with_condition_up(mut self, condition: Option<LinkCondition>) -> AccessLinkClass {
        self.condition_up = condition.filter(|c| !c.is_noop());
        self
    }

    /// The conditioner effective on the download (ISP -> node) direction.
    pub fn effective_condition_down(&self) -> Option<LinkCondition> {
        self.condition_down.or(self.condition)
    }

    /// The conditioner effective on the upload (node -> ISP) direction.
    pub fn effective_condition_up(&self) -> Option<LinkCondition> {
        self.condition_up.or(self.condition)
    }

    /// True if any direction of this link carries a conditioner.
    pub fn has_condition(&self) -> bool {
        self.condition.is_some() || self.condition_down.is_some() || self.condition_up.is_some()
    }

    /// The DSL profile of the paper's BitTorrent experiments: 2 Mbps down, 128 kbps up, 30 ms.
    pub fn bittorrent_dsl() -> AccessLinkClass {
        AccessLinkClass::new(2_000_000, 128_000, SimDuration::from_millis(30))
    }

    /// The 56k/33.6k modem group of Figure 7 (`10.1.1.0/24`, 100 ms).
    pub fn modem_56k() -> AccessLinkClass {
        AccessLinkClass::new(56_000, 33_600, SimDuration::from_millis(100))
    }

    /// The 512k/128k DSL group of Figure 7 (`10.1.2.0/24`, 40 ms).
    pub fn dsl_512k() -> AccessLinkClass {
        AccessLinkClass::new(512_000, 128_000, SimDuration::from_millis(40))
    }

    /// The 8M/1M DSL group of Figure 7 (`10.1.3.0/24`, 20 ms).
    pub fn dsl_8m() -> AccessLinkClass {
        AccessLinkClass::new(8_000_000, 1_000_000, SimDuration::from_millis(20))
    }

    /// The symmetric 10 Mbps group of Figure 7 (`10.2.0.0/16`, 5 ms).
    pub fn lan_10m() -> AccessLinkClass {
        AccessLinkClass::symmetric(10_000_000, SimDuration::from_millis(5))
    }

    /// The symmetric 1 Mbps group of Figure 7 (`10.3.0.0/16`, 10 ms).
    pub fn wan_1m() -> AccessLinkClass {
        AccessLinkClass::symmetric(1_000_000, SimDuration::from_millis(10))
    }
}

/// A group of virtual nodes sharing a subnet and an access-link class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSpec {
    /// Group name (for reports).
    pub name: String,
    /// Subnet the group's virtual nodes are numbered from.
    pub subnet: Subnet,
    /// Number of virtual nodes in the group.
    pub node_count: usize,
    /// Access link of every node in the group.
    pub link: AccessLinkClass,
}

/// A full topology: groups plus pairwise inter-group latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologySpec {
    /// The node groups.
    pub groups: Vec<GroupSpec>,
    /// One-way latency added between two groups (symmetric; missing entries mean no added
    /// latency). Keys are stored with the smaller group id first.
    inter_group_latency: BTreeMap<(usize, usize), SimDuration>,
}

impl TopologySpec {
    /// Creates an empty topology.
    pub fn new() -> TopologySpec {
        TopologySpec {
            groups: Vec::new(),
            inter_group_latency: BTreeMap::new(),
        }
    }

    /// Adds a group and returns its id.
    pub fn add_group(
        &mut self,
        name: impl Into<String>,
        subnet: Subnet,
        node_count: usize,
        link: AccessLinkClass,
    ) -> GroupId {
        assert!(
            (node_count as u64) < subnet.size(),
            "group does not fit in its subnet"
        );
        self.groups.push(GroupSpec {
            name: name.into(),
            subnet,
            node_count,
            link,
        });
        GroupId(self.groups.len() - 1)
    }

    /// Sets the (symmetric) one-way latency between two groups.
    pub fn set_group_latency(&mut self, a: GroupId, b: GroupId, latency: SimDuration) {
        assert!(
            a.0 < self.groups.len() && b.0 < self.groups.len(),
            "unknown group"
        );
        let key = (a.0.min(b.0), a.0.max(b.0));
        self.inter_group_latency.insert(key, latency);
    }

    /// The one-way latency between two groups (zero if none was configured or `a == b`).
    pub fn group_latency(&self, a: GroupId, b: GroupId) -> SimDuration {
        if a == b {
            return SimDuration::ZERO;
        }
        let key = (a.0.min(b.0), a.0.max(b.0));
        self.inter_group_latency
            .get(&key)
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// All configured inter-group latencies.
    pub fn group_latencies(&self) -> impl Iterator<Item = (GroupId, GroupId, SimDuration)> + '_ {
        self.inter_group_latency
            .iter()
            .map(|(&(a, b), &d)| (GroupId(a), GroupId(b), d))
    }

    /// Total number of virtual nodes.
    pub fn total_nodes(&self) -> usize {
        self.groups.iter().map(|g| g.node_count).sum()
    }

    /// The group a given address belongs to, if any.
    pub fn group_of(&self, addr: VirtAddr) -> Option<GroupId> {
        self.groups
            .iter()
            .position(|g| g.subnet.contains(addr))
            .map(GroupId)
    }

    /// The address of the `i`-th node of a group (1-based within the subnet, so `.0` is never
    /// used as a node address).
    pub fn node_addr(&self, group: GroupId, i: usize) -> VirtAddr {
        let g = &self.groups[group.0];
        assert!(i < g.node_count, "node index out of range");
        g.subnet.host_at(i as u32 + 1)
    }

    /// A single-group topology where every node has the same access link — the configuration of
    /// the paper's BitTorrent experiments (all nodes on a DSL-like connection).
    pub fn uniform(name: &str, node_count: usize, link: AccessLinkClass) -> TopologySpec {
        let mut t = TopologySpec::new();
        t.add_group(
            name,
            Subnet::new(VirtAddr::new(10, 0, 0, 0), 8),
            node_count,
            link,
        );
        t
    }

    /// The example topology of the paper's Figure 7: three /24 DSL-ish groups inside
    /// `10.1.0.0/16`, a 10 Mbps `10.2.0.0/16` group and a 1 Mbps `10.3.0.0/16` group, with
    /// 100 ms between the /24 groups, 400 ms between 10.1 and 10.2, 600 ms between 10.1 and
    /// 10.3, and 1 s between 10.2 and 10.3.
    pub fn paper_figure7() -> TopologySpec {
        let mut t = TopologySpec::new();
        let g_modem = t.add_group(
            "10.1.1.0/24 (56k/33.6k, 100ms)",
            "10.1.1.0/24".parse().unwrap(),
            250,
            AccessLinkClass::modem_56k(),
        );
        let g_dsl512 = t.add_group(
            "10.1.2.0/24 (512k/128k, 40ms)",
            "10.1.2.0/24".parse().unwrap(),
            250,
            AccessLinkClass::dsl_512k(),
        );
        let g_dsl8m = t.add_group(
            "10.1.3.0/24 (8M/1M, 20ms)",
            "10.1.3.0/24".parse().unwrap(),
            250,
            AccessLinkClass::dsl_8m(),
        );
        let g_lan = t.add_group(
            "10.2.0.0/16 (10M, 5ms)",
            "10.2.0.0/16".parse().unwrap(),
            1000,
            AccessLinkClass::lan_10m(),
        );
        let g_wan = t.add_group(
            "10.3.0.0/16 (1M, 10ms)",
            "10.3.0.0/16".parse().unwrap(),
            1000,
            AccessLinkClass::wan_1m(),
        );
        // 100 ms between the three 10.1.x.0/24 groups.
        t.set_group_latency(g_modem, g_dsl512, SimDuration::from_millis(100));
        t.set_group_latency(g_modem, g_dsl8m, SimDuration::from_millis(100));
        t.set_group_latency(g_dsl512, g_dsl8m, SimDuration::from_millis(100));
        // Latencies between the /16 clouds.
        for g in [g_modem, g_dsl512, g_dsl8m] {
            t.set_group_latency(g, g_lan, SimDuration::from_millis(400));
            t.set_group_latency(g, g_wan, SimDuration::from_millis(600));
        }
        t.set_group_latency(g_lan, g_wan, SimDuration::from_secs(1));
        t
    }

    /// The smallest access-link latency of any group (`None` for an empty topology).
    pub fn min_access_latency(&self) -> Option<SimDuration> {
        self.groups.iter().map(|g| g.link.latency).min()
    }

    /// The conservative lookahead this topology supports: a lower bound on the one-way
    /// node-to-node delivery time. Every path crosses the sender's access link and the
    /// receiver's access link (each contributing its propagation latency — queueing,
    /// serialization and conditioners only add, see [`crate::PipeConfig::transit_floor`]),
    /// and inter-group latency is strictly additive on top. Hence
    /// `2 × min_access_latency`.
    ///
    /// Returns `None` when the topology is empty or the bound is zero (a zero-latency link
    /// means two nodes can interact instantaneously, so no conservative window exists and the
    /// scenario cannot be sharded).
    pub fn conservative_lookahead(&self) -> Option<SimDuration> {
        let min = self.min_access_latency()?;
        let lookahead = min * 2;
        (!lookahead.is_zero()).then_some(lookahead)
    }

    /// Number of inter-group rules a physical node hosting nodes from `groups_present` needs
    /// (the paper's rule-count accounting for Figure 7: one rule per hosted source group per
    /// distinct destination group with configured latency).
    pub fn group_rule_count(&self, groups_present: &[GroupId]) -> usize {
        let mut count = 0;
        for &src in groups_present {
            for dst in 0..self.groups.len() {
                let dst = GroupId(dst);
                if dst != src && !self.group_latency(src, dst).is_zero() {
                    count += 1;
                }
            }
        }
        count
    }
}

impl Default for TopologySpec {
    fn default() -> Self {
        TopologySpec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_topology() {
        let t = TopologySpec::uniform("dsl", 160, AccessLinkClass::bittorrent_dsl());
        assert_eq!(t.total_nodes(), 160);
        assert_eq!(t.groups.len(), 1);
        let a = t.node_addr(GroupId(0), 0);
        assert_eq!(a, VirtAddr::new(10, 0, 0, 1));
        assert_eq!(t.group_of(a), Some(GroupId(0)));
        assert_eq!(t.group_latency(GroupId(0), GroupId(0)), SimDuration::ZERO);
    }

    #[test]
    fn figure7_topology_structure() {
        let t = TopologySpec::paper_figure7();
        assert_eq!(t.groups.len(), 5);
        assert_eq!(t.total_nodes(), 250 * 3 + 1000 * 2);
        // The measured pair of the paper: 10.1.3.207 and 10.2.2.117.
        let src = t.group_of("10.1.3.207".parse().unwrap()).unwrap();
        let dst = t.group_of("10.2.2.117".parse().unwrap()).unwrap();
        assert_eq!(t.group_latency(src, dst), SimDuration::from_millis(400));
        // And their access links.
        assert_eq!(t.groups[src.0].link.latency, SimDuration::from_millis(20));
        assert_eq!(t.groups[dst.0].link.latency, SimDuration::from_millis(5));
    }

    #[test]
    fn conservative_lookahead_is_twice_the_smallest_access_latency() {
        let t = TopologySpec::paper_figure7();
        assert_eq!(t.min_access_latency(), Some(SimDuration::from_millis(5)));
        assert_eq!(
            t.conservative_lookahead(),
            Some(SimDuration::from_millis(10))
        );
        // Zero-latency links admit no conservative window.
        let z = TopologySpec::uniform(
            "zero",
            4,
            AccessLinkClass::symmetric(1_000_000, SimDuration::ZERO),
        );
        assert_eq!(z.conservative_lookahead(), None);
        assert_eq!(TopologySpec::new().conservative_lookahead(), None);
    }

    #[test]
    fn figure7_group_latencies_are_symmetric() {
        let t = TopologySpec::paper_figure7();
        for (a, b, d) in t.group_latencies() {
            assert_eq!(t.group_latency(a, b), d);
            assert_eq!(t.group_latency(b, a), d);
        }
    }

    #[test]
    fn figure7_rule_count_example() {
        // The paper's example: the node hosting 10.1.3.207 needs, besides two rules per hosted
        // virtual node, one rule to each of 10.1.1.0/24, 10.1.2.0/24, 10.2.0.0/16 and
        // 10.3.0.0/16 — four group rules.
        let t = TopologySpec::paper_figure7();
        let host_group = t.group_of("10.1.3.207".parse().unwrap()).unwrap();
        assert_eq!(t.group_rule_count(&[host_group]), 4);
    }

    #[test]
    fn node_addresses_stay_in_subnet() {
        let t = TopologySpec::paper_figure7();
        for (gi, g) in t.groups.iter().enumerate() {
            for i in [0, g.node_count - 1] {
                let addr = t.node_addr(GroupId(gi), i);
                assert!(g.subnet.contains(addr), "{} not in {}", addr, g.subnet);
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn group_must_fit_subnet() {
        let mut t = TopologySpec::new();
        t.add_group(
            "too-big",
            "10.1.1.0/24".parse().unwrap(),
            300,
            AccessLinkClass::bittorrent_dsl(),
        );
    }

    #[test]
    fn access_link_presets() {
        let dsl = AccessLinkClass::bittorrent_dsl();
        assert_eq!(dsl.down_bps, 2_000_000);
        assert_eq!(dsl.up_bps, 128_000);
        assert_eq!(dsl.latency, SimDuration::from_millis(30));
        assert_eq!(dsl.loss_rate, 0.0);
        let lossy = dsl.with_loss(0.01);
        assert!((lossy.loss_rate - 0.01).abs() < 1e-12);
    }
}
