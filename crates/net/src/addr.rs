//! Virtual IPv4-style addressing.
//!
//! P2PLab gives every virtual node its own IP address, configured as an interface alias on the
//! hosting physical node (Figure 4 of the paper: administration addresses in `192.168.38.0/24`,
//! virtual nodes in `10.0.0.0/8`). This module provides the address and subnet types used by the
//! firewall rules, the topology description and the socket layer.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An IPv4-style address of a virtual (or physical) node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VirtAddr(pub u32);

impl VirtAddr {
    /// Builds an address from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> VirtAddr {
        VirtAddr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The four octets of the address.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// The address `offset` positions after this one (wrapping within 32 bits).
    pub const fn offset(self, offset: u32) -> VirtAddr {
        VirtAddr(self.0.wrapping_add(offset))
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

/// Error parsing an address or subnet from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrParseError(pub String);

impl fmt::Display for AddrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid address or subnet: {}", self.0)
    }
}

impl std::error::Error for AddrParseError {}

impl FromStr for VirtAddr {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('.').collect();
        if parts.len() != 4 {
            return Err(AddrParseError(s.to_string()));
        }
        let mut octets = [0u8; 4];
        for (i, p) in parts.iter().enumerate() {
            octets[i] = p.parse().map_err(|_| AddrParseError(s.to_string()))?;
        }
        Ok(VirtAddr::new(octets[0], octets[1], octets[2], octets[3]))
    }
}

/// A CIDR subnet such as `10.1.3.0/24`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Subnet {
    /// Network base address (host bits zeroed on construction).
    pub base: VirtAddr,
    /// Prefix length in bits (0..=32).
    pub prefix: u8,
}

impl Subnet {
    /// Creates a subnet, zeroing the host bits of `base`.
    pub fn new(base: VirtAddr, prefix: u8) -> Subnet {
        assert!(prefix <= 32, "prefix must be <= 32");
        Subnet {
            base: VirtAddr(base.0 & Self::mask_bits(prefix)),
            prefix,
        }
    }

    /// The all-addresses subnet `0.0.0.0/0`.
    pub fn any() -> Subnet {
        Subnet::new(VirtAddr(0), 0)
    }

    /// A single-host subnet (`/32`).
    pub fn host(addr: VirtAddr) -> Subnet {
        Subnet::new(addr, 32)
    }

    const fn mask_bits(prefix: u8) -> u32 {
        if prefix == 0 {
            0
        } else {
            u32::MAX << (32 - prefix)
        }
    }

    /// True if `addr` lies inside this subnet.
    pub fn contains(&self, addr: VirtAddr) -> bool {
        (addr.0 & Self::mask_bits(self.prefix)) == self.base.0
    }

    /// The `i`-th host address of the subnet (0 = base address).
    pub fn host_at(&self, i: u32) -> VirtAddr {
        let addr = self.base.offset(i);
        debug_assert!(self.contains(addr), "host index out of subnet range");
        addr
    }

    /// Number of addresses in the subnet.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.prefix)
    }
}

impl fmt::Display for Subnet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base, self.prefix)
    }
}

impl FromStr for Subnet {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, prefix) = s
            .split_once('/')
            .ok_or_else(|| AddrParseError(s.to_string()))?;
        let base: VirtAddr = addr.parse()?;
        let prefix: u8 = prefix.parse().map_err(|_| AddrParseError(s.to_string()))?;
        if prefix > 32 {
            return Err(AddrParseError(s.to_string()));
        }
        Ok(Subnet::new(base, prefix))
    }
}

/// A `(address, port)` pair identifying a socket endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SocketAddr {
    /// Node address.
    pub addr: VirtAddr,
    /// TCP/UDP-style port.
    pub port: u16,
}

impl SocketAddr {
    /// Creates a socket address.
    pub fn new(addr: VirtAddr, port: u16) -> SocketAddr {
        SocketAddr { addr, port }
    }
}

impl fmt::Display for SocketAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.addr, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        let a = VirtAddr::new(10, 1, 3, 207);
        assert_eq!(a.to_string(), "10.1.3.207");
        assert_eq!("10.1.3.207".parse::<VirtAddr>().unwrap(), a);
        assert!("10.1.3".parse::<VirtAddr>().is_err());
        assert!("10.1.3.999".parse::<VirtAddr>().is_err());
    }

    #[test]
    fn subnet_contains() {
        let s: Subnet = "10.1.3.0/24".parse().unwrap();
        assert!(s.contains(VirtAddr::new(10, 1, 3, 207)));
        assert!(!s.contains(VirtAddr::new(10, 1, 2, 207)));
        let wide: Subnet = "10.1.0.0/16".parse().unwrap();
        assert!(wide.contains(VirtAddr::new(10, 1, 3, 207)));
        assert!(wide.contains(VirtAddr::new(10, 1, 2, 1)));
        assert!(!wide.contains(VirtAddr::new(10, 2, 0, 1)));
        assert!(Subnet::any().contains(VirtAddr::new(192, 168, 38, 1)));
    }

    #[test]
    fn subnet_zeroes_host_bits() {
        let s = Subnet::new(VirtAddr::new(10, 1, 3, 207), 24);
        assert_eq!(s.base, VirtAddr::new(10, 1, 3, 0));
        assert_eq!(s.to_string(), "10.1.3.0/24");
    }

    #[test]
    fn subnet_host_enumeration() {
        let s: Subnet = "10.0.0.0/8".parse().unwrap();
        assert_eq!(s.host_at(1), VirtAddr::new(10, 0, 0, 1));
        assert_eq!(s.host_at(300), VirtAddr::new(10, 0, 1, 44));
        assert_eq!(s.size(), 1 << 24);
        assert_eq!(Subnet::host(VirtAddr::new(10, 0, 0, 1)).size(), 1);
    }

    #[test]
    fn subnet_parse_errors() {
        assert!("10.0.0.0".parse::<Subnet>().is_err());
        assert!("10.0.0.0/40".parse::<Subnet>().is_err());
        assert!("banana/8".parse::<Subnet>().is_err());
    }

    #[test]
    fn socket_addr_display() {
        let sa = SocketAddr::new(VirtAddr::new(10, 0, 0, 1), 6881);
        assert_eq!(sa.to_string(), "10.0.0.1:6881");
    }

    #[test]
    fn paper_figure4_addressing_scheme() {
        // Administration addresses and virtual-node aliases live in disjoint subnets.
        let admin: Subnet = "192.168.38.0/24".parse().unwrap();
        let vnodes: Subnet = "10.0.0.0/8".parse().unwrap();
        let admin_addr = VirtAddr::new(192, 168, 38, 1);
        let alias = VirtAddr::new(10, 0, 0, 51);
        assert!(admin.contains(admin_addr) && !vnodes.contains(admin_addr));
        assert!(vnodes.contains(alias) && !admin.contains(alias));
    }
}
