//! Typed request/response RPC over the unreliable datagram lane.
//!
//! Iterative protocols (DHT lookups, probing, gossip pull) are request/response at heart: send
//! a query, wait bounded time for the answer, retry a few times, give up. This module packages
//! that pattern over the transport's unreliable datagram path:
//!
//! * [`call`] sends a request and registers a continuation; the reply (or a timeout after
//!   `max_attempts` tries) is delivered to the continuation with the measured latency;
//! * retransmissions are **bounded retries** on a flat timeout — the reliability lives in the
//!   RPC layer, not the transport, exactly like UDP-based DHT protocols;
//! * the per-call timeout timer is cancelled through the engine's timer wheel when the reply
//!   arrives first — the overwhelmingly common case — so a completed call costs O(1)
//!   cancellation instead of a tombstoned timer firing later;
//! * request/response correlation, duplicate/late-reply suppression and statistics live in the
//!   world's [`RpcTable`].
//!
//! A world opts in by choosing [`RpcPayload`] as its transport payload and implementing
//! [`RpcHost`]: [`RpcHost::serve`] answers incoming requests, and the world's
//! `on_transport_event` routes events through [`dispatch`], which consumes RPC traffic and
//! passes everything else back.
//!
//! ```
//! use p2plab_net::rpc::{self, RpcConfig, RpcHost, RpcOutcome, RpcPayload, RpcTable};
//! use p2plab_net::{
//!     AccessLinkClass, GroupId, NetHost, NetSim, Network, NetworkConfig, SocketAddr,
//!     TopologySpec, TransportEvent, VNodeId, VirtAddr,
//! };
//! use p2plab_sim::Simulation;
//!
//! /// Nodes answer `n` with `n + 1`; the world records completed calls.
//! struct Adder {
//!     net: Network,
//!     rpc: RpcTable<Adder>,
//!     answers: Vec<u64>,
//! }
//!
//! impl NetHost for Adder {
//!     type Payload = RpcPayload<u64>;
//!     fn network(&mut self) -> &mut Network {
//!         &mut self.net
//!     }
//!     fn on_transport_event(sim: &mut NetSim<Self>, node: VNodeId, ev: TransportEvent<RpcPayload<u64>>) {
//!         rpc::dispatch(sim, node, ev); // everything here is RPC traffic
//!     }
//! }
//!
//! impl RpcHost for Adder {
//!     type Body = u64;
//!     fn rpc_table(&mut self) -> &mut RpcTable<Adder> {
//!         &mut self.rpc
//!     }
//!     fn serve(
//!         _sim: &mut NetSim<Self>,
//!         _node: VNodeId,
//!         _from: SocketAddr,
//!         _port: u16,
//!         body: u64,
//!     ) -> Option<(u64, u64)> {
//!         Some((body + 1, 8)) // reply payload, reply wire bytes
//!     }
//! }
//!
//! let topo = TopologySpec::uniform("doc", 2, AccessLinkClass::bittorrent_dsl());
//! let mut net = Network::new(NetworkConfig::default(), topo);
//! let m = net.add_machine("pm0", VirtAddr::new(192, 168, 38, 1));
//! let a = net.add_vnode(m, VirtAddr::new(10, 0, 0, 1), GroupId(0)).unwrap();
//! let b = net.add_vnode(m, VirtAddr::new(10, 0, 0, 2), GroupId(0)).unwrap();
//! let remote = SocketAddr::new(net.addr_of(b), 4000);
//!
//! let world = Adder { net, rpc: RpcTable::new(RpcConfig::default()), answers: vec![] };
//! let mut sim: NetSim<Adder> = Simulation::with_events(world, 1);
//! rpc::call(&mut sim, a, 4000, remote, 41, 8, |sim, outcome| {
//!     if let RpcOutcome::Reply { body, .. } = outcome {
//!         sim.world_mut().answers.push(body);
//!     }
//! })
//! .unwrap();
//! sim.run();
//! assert_eq!(sim.world().answers, vec![42]);
//! ```

use crate::addr::SocketAddr;
use crate::endpoint::Endpoint;
use crate::network::{NetError, VNodeId};
use crate::transport::{NetHost, NetSim, TransportEvent};
use p2plab_sim::{EventId, FxHashMap, SimDuration, SimTime};

/// Correlation id of one RPC call, unique within the world's [`RpcTable`]. The raw value is
/// public so hostile-path tests can forge arbitrary correlation ids against the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RpcId(pub u64);

impl RpcId {
    /// The raw correlation value (for logging).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// The transport payload of an RPC world: application bodies tagged as requests or responses,
/// correlated by [`RpcId`].
#[derive(Debug, Clone)]
pub enum RpcPayload<B> {
    /// A request awaiting an answer.
    Request {
        /// Correlation id, echoed by the response.
        id: RpcId,
        /// Application request body.
        body: B,
    },
    /// The answer to an earlier request.
    Response {
        /// Correlation id of the request being answered.
        id: RpcId,
        /// Application response body.
        body: B,
    },
}

/// Timeout and retry policy of an [`RpcTable`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RpcConfig {
    /// How long to wait for a response before retrying (flat per attempt).
    pub timeout: SimDuration,
    /// Total transmission attempts before the call fails (1 = no retries).
    pub max_attempts: u32,
}

impl Default for RpcConfig {
    fn default() -> Self {
        RpcConfig {
            timeout: SimDuration::from_secs(1),
            max_attempts: 3,
        }
    }
}

/// Counters kept by an [`RpcTable`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RpcStats {
    /// Calls issued.
    pub calls: u64,
    /// Calls completed by a response.
    pub replies: u64,
    /// Request retransmissions after a timeout.
    pub retries: u64,
    /// Calls abandoned after exhausting their attempts.
    pub timeouts: u64,
    /// Responses that arrived after their call had already timed out (or that matched no
    /// pending call at this node).
    pub late_replies: u64,
    /// Requests served by this world's nodes.
    pub served: u64,
}

/// How one RPC call ended, handed to the continuation passed to [`call`].
pub enum RpcOutcome<B> {
    /// The response arrived.
    Reply {
        /// Application response body.
        body: B,
        /// Time from [`call`] to the response's delivery (spanning retries).
        rtt: SimDuration,
        /// Request transmissions performed (1 = first try answered).
        attempts: u32,
    },
    /// Every attempt went unanswered within its timeout.
    TimedOut {
        /// Request transmissions performed.
        attempts: u32,
    },
}

impl<B> RpcOutcome<B> {
    /// Whether the call completed with a reply.
    pub fn is_reply(&self) -> bool {
        matches!(self, RpcOutcome::Reply { .. })
    }
}

/// The boxed continuation a call completes into.
type OnDone<W> = Box<dyn FnOnce(&mut NetSim<W>, RpcOutcome<<W as RpcHost>::Body>)>;

/// One in-flight call.
struct Pending<W: RpcHost> {
    caller: VNodeId,
    from_port: u16,
    remote: SocketAddr,
    /// The request body, kept for retransmission.
    body: W::Body,
    /// Request wire bytes (payload size charged per transmission).
    size: u64,
    attempts: u32,
    timer: EventId,
    started: SimTime,
    on_done: OnDone<W>,
}

/// Per-world RPC state: pending calls keyed by correlation id, the retry policy and counters.
/// Embedded in the world and exposed through [`RpcHost::rpc_table`].
pub struct RpcTable<W: RpcHost> {
    config: RpcConfig,
    next_id: u64,
    pending: FxHashMap<u64, Pending<W>>,
    stats: RpcStats,
}

impl<W: RpcHost> RpcTable<W> {
    /// Creates an empty table with the given retry policy.
    ///
    /// # Panics
    ///
    /// Panics when `max_attempts` is zero (a call that may never be sent can never complete).
    pub fn new(config: RpcConfig) -> RpcTable<W> {
        assert!(config.max_attempts >= 1, "rpc needs at least one attempt");
        RpcTable {
            config,
            next_id: 0,
            pending: FxHashMap::default(),
            stats: RpcStats::default(),
        }
    }

    /// The table's timeout/retry policy.
    pub fn config(&self) -> RpcConfig {
        self.config
    }

    /// The table's counters.
    pub fn stats(&self) -> RpcStats {
        self.stats
    }

    /// Number of calls currently awaiting a response.
    pub fn pending_calls(&self) -> usize {
        self.pending.len()
    }
}

/// A world that runs the RPC layer: transport payload is [`RpcPayload`], requests are answered
/// by [`serve`](RpcHost::serve), and pending-call state lives in the embedded [`RpcTable`].
pub trait RpcHost: NetHost<Payload = RpcPayload<<Self as RpcHost>::Body>> {
    /// Application message body carried inside requests and responses.
    type Body: Clone + 'static;

    /// Access to the world's RPC state.
    fn rpc_table(&mut self) -> &mut RpcTable<Self>;

    /// Answers a request that arrived at `node` on `port` from `from`. Returning
    /// `Some((reply_body, reply_size))` sends the response back; `None` drops the request
    /// (the caller will retry and eventually time out).
    fn serve(
        sim: &mut NetSim<Self>,
        node: VNodeId,
        from: SocketAddr,
        port: u16,
        body: Self::Body,
    ) -> Option<(Self::Body, u64)>;
}

/// Issues an RPC from `node:from_port` to `remote`: sends `body` (`size` wire bytes) as an
/// unreliable datagram, retrying on the table's flat timeout up to its `max_attempts`, and
/// hands the outcome to `on_done` — with the reply and measured latency, or as a timeout.
///
/// The timeout timer is cancelled in O(1) through the engine's timer wheel when the reply
/// arrives first (the common case), so completed calls leave nothing behind in the queue.
pub fn call<W: RpcHost>(
    sim: &mut NetSim<W>,
    node: VNodeId,
    from_port: u16,
    remote: SocketAddr,
    body: W::Body,
    size: u64,
    on_done: impl FnOnce(&mut NetSim<W>, RpcOutcome<W::Body>) + 'static,
) -> Result<RpcId, NetError> {
    let now = sim.now();
    let (id, timeout) = {
        let table = sim.world_mut().rpc_table();
        let id = table.next_id;
        table.next_id += 1;
        (id, table.config.timeout)
    };
    Endpoint::new(node).send_datagram(
        sim,
        from_port,
        remote,
        size,
        RpcPayload::Request {
            id: RpcId(id),
            body: body.clone(),
        },
    )?;
    // Counted only once the request is actually on the wire: a synchronous send error above
    // leaves the stats invariant `calls == replies + timeouts + pending` intact.
    sim.world_mut().rpc_table().stats.calls += 1;
    let timer = sim.schedule_in(timeout, move |sim| on_timeout(sim, id));
    sim.world_mut().rpc_table().pending.insert(
        id,
        Pending {
            caller: node,
            from_port,
            remote,
            body,
            size,
            attempts: 1,
            timer,
            started: now,
            on_done: Box::new(on_done),
        },
    );
    Ok(RpcId(id))
}

/// Routes a transport event through the RPC layer: requests are answered via
/// [`RpcHost::serve`], responses complete their pending call (cancelling its timer), and
/// anything that is not RPC traffic is handed back for the application to process.
pub fn dispatch<W: RpcHost>(
    sim: &mut NetSim<W>,
    node: VNodeId,
    event: TransportEvent<RpcPayload<W::Body>>,
) -> Option<TransportEvent<RpcPayload<W::Body>>> {
    match event {
        TransportEvent::Datagram {
            from,
            to_port,
            payload: RpcPayload::Request { id, body },
            ..
        } => {
            let reply = W::serve(sim, node, from, to_port, body);
            sim.world_mut().rpc_table().stats.served += 1;
            if let Some((reply_body, reply_size)) = reply {
                // Answer from the port the request was addressed to, back to the caller's
                // socket: the correlation id ties the response to the pending call.
                let _ = Endpoint::new(node).send_datagram(
                    sim,
                    to_port,
                    from,
                    reply_size,
                    RpcPayload::Response {
                        id,
                        body: reply_body,
                    },
                );
            }
            None
        }
        TransportEvent::Datagram {
            payload: RpcPayload::Response { id, body },
            ..
        } => {
            let now = sim.now();
            let pending = {
                let table = sim.world_mut().rpc_table();
                // Only the calling node may complete the call; a stray or duplicate response
                // (late after a timeout, or misrouted) is counted and swallowed.
                match table.pending.get(&id.0) {
                    Some(p) if p.caller == node => table.pending.remove(&id.0),
                    _ => {
                        table.stats.late_replies += 1;
                        return None;
                    }
                }
            };
            let p = pending.expect("checked above");
            sim.world_mut().rpc_table().stats.replies += 1;
            // The common completed-before-timeout case: O(1) timer-wheel cancellation.
            sim.cancel(p.timer);
            (p.on_done)(
                sim,
                RpcOutcome::Reply {
                    body,
                    rtt: now - p.started,
                    attempts: p.attempts,
                },
            );
            None
        }
        other => Some(other),
    }
}

/// Timeout path: retry while attempts remain, otherwise fail the call.
fn on_timeout<W: RpcHost>(sim: &mut NetSim<W>, id: u64) {
    let retry = {
        let table = sim.world_mut().rpc_table();
        match table.pending.get(&id) {
            None => return, // completed in the same instant; timer raced its cancellation
            Some(p) if p.attempts < table.config.max_attempts => Some((
                p.caller,
                p.from_port,
                p.remote,
                p.body.clone(),
                p.size,
                table.config.timeout,
            )),
            Some(_) => None,
        }
    };
    match retry {
        Some((caller, from_port, remote, body, size, timeout)) => {
            sim.world_mut().rpc_table().stats.retries += 1;
            let _ = Endpoint::new(caller).send_datagram(
                sim,
                from_port,
                remote,
                size,
                RpcPayload::Request {
                    id: RpcId(id),
                    body,
                },
            );
            let timer = sim.schedule_in(timeout, move |sim| on_timeout(sim, id));
            let table = sim.world_mut().rpc_table();
            if let Some(p) = table.pending.get_mut(&id) {
                p.attempts += 1;
                p.timer = timer;
            }
        }
        None => {
            let p = sim
                .world_mut()
                .rpc_table()
                .pending
                .remove(&id)
                .expect("pending checked above");
            sim.world_mut().rpc_table().stats.timeouts += 1;
            sim.world_mut().network().stats.rpc_timeouts += 1;
            (p.on_done)(
                sim,
                RpcOutcome::TimedOut {
                    attempts: p.attempts,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Network, NetworkConfig};
    use crate::topology::{AccessLinkClass, GroupId, TopologySpec};
    use crate::VirtAddr;
    use p2plab_sim::Simulation;

    /// Echo-with-increment RPC world; drops requests on nodes listed in `mute`.
    struct World {
        net: Network,
        rpc: RpcTable<World>,
        outcomes: Vec<(u64, bool, u32)>, // (call tag, replied, attempts)
        mute: Vec<VNodeId>,
    }

    impl NetHost for World {
        type Payload = RpcPayload<u64>;

        fn network(&mut self) -> &mut Network {
            &mut self.net
        }

        fn on_transport_event(
            sim: &mut NetSim<Self>,
            node: VNodeId,
            ev: TransportEvent<RpcPayload<u64>>,
        ) {
            rpc_dispatch_all(sim, node, ev);
        }
    }

    fn rpc_dispatch_all(
        sim: &mut NetSim<World>,
        node: VNodeId,
        ev: TransportEvent<RpcPayload<u64>>,
    ) {
        let leftover = super::dispatch(sim, node, ev);
        assert!(leftover.is_none(), "only RPC traffic in this world");
    }

    impl RpcHost for World {
        type Body = u64;

        fn rpc_table(&mut self) -> &mut RpcTable<World> {
            &mut self.rpc
        }

        fn serve(
            sim: &mut NetSim<Self>,
            node: VNodeId,
            _from: SocketAddr,
            _port: u16,
            body: u64,
        ) -> Option<(u64, u64)> {
            if sim.world().mute.contains(&node) {
                return None;
            }
            Some((body + 1, 16))
        }
    }

    fn world(n: usize, loss: f64, config: RpcConfig) -> World {
        let link = AccessLinkClass::symmetric(10_000_000, SimDuration::from_millis(5));
        let topo = TopologySpec::uniform("rpc", n, link.with_loss(loss));
        let mut net = Network::new(NetworkConfig::default(), topo);
        let m = net.add_machine("pm0", VirtAddr::new(192, 168, 38, 1));
        for i in 0..n {
            net.add_vnode(
                m,
                VirtAddr::new(10, 0, 0, 0).offset(i as u32 + 1),
                GroupId(0),
            )
            .unwrap();
        }
        World {
            net,
            rpc: RpcTable::new(config),
            outcomes: Vec::new(),
            mute: Vec::new(),
        }
    }

    fn call_tagged(sim: &mut NetSim<World>, from: VNodeId, to: VNodeId, tag: u64) {
        let remote = SocketAddr::new(sim.world_mut().net.addr_of(to), 4000);
        call(sim, from, 4000, remote, tag, 32, move |sim, outcome| {
            let (replied, attempts) = match &outcome {
                RpcOutcome::Reply { attempts, body, .. } => {
                    assert_eq!(*body, tag + 1, "reply echoes the request body + 1");
                    (true, *attempts)
                }
                RpcOutcome::TimedOut { attempts } => (false, *attempts),
            };
            sim.world_mut().outcomes.push((tag, replied, attempts));
        })
        .unwrap();
    }

    #[test]
    fn call_completes_and_cancels_its_timer() {
        let w = world(2, 0.0, RpcConfig::default());
        let mut sim: NetSim<World> = Simulation::with_events(w, 1);
        call_tagged(&mut sim, VNodeId(0), VNodeId(1), 7);
        sim.run();
        assert_eq!(sim.world().outcomes, vec![(7, true, 1)]);
        let stats = sim.world_mut().rpc.stats();
        assert_eq!(stats.calls, 1);
        assert_eq!(stats.replies, 1);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.timeouts, 0);
        assert_eq!(sim.world_mut().rpc.pending_calls(), 0);
        assert_eq!(sim.world_mut().net.stats().rpc_timeouts, 0);
        // The cancelled timeout timer never fired: virtual time stops at the reply, well
        // before the 1 s timeout.
        assert!(sim.now() < SimTime::ZERO + SimDuration::from_millis(500));
    }

    #[test]
    fn unanswered_call_retries_then_times_out() {
        let config = RpcConfig {
            timeout: SimDuration::from_millis(100),
            max_attempts: 3,
        };
        let w = world(2, 0.0, config);
        let mut sim: NetSim<World> = Simulation::with_events(w, 1);
        sim.world_mut().mute.push(VNodeId(1));
        call_tagged(&mut sim, VNodeId(0), VNodeId(1), 9);
        sim.run();
        assert_eq!(sim.world().outcomes, vec![(9, false, 3)]);
        let stats = sim.world_mut().rpc.stats();
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.served, 3, "the mute responder still saw each attempt");
        // Timeouts surface on the network's transport counters too (the PR 3 convention
        // syncs them into the run's Recorder).
        assert_eq!(sim.world_mut().net.stats().rpc_timeouts, 1);
        // Three attempts, 100 ms apart: the call fails at ~300 ms.
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_millis(300));
    }

    #[test]
    fn retries_recover_from_loss() {
        // 20% loss on every pipe traversal (a round trip crosses four lossy pipes, so a single
        // attempt only succeeds ~41% of the time); bounded retries recover almost every call.
        let config = RpcConfig {
            timeout: SimDuration::from_millis(200),
            max_attempts: 8,
        };
        let w = world(2, 0.2, config);
        let mut sim: NetSim<World> = Simulation::with_events(w, 5);
        for tag in 0..20 {
            call_tagged(&mut sim, VNodeId(0), VNodeId(1), tag);
        }
        sim.run();
        let replied = sim.world().outcomes.iter().filter(|(_, r, _)| *r).count();
        assert!(replied >= 16, "only {replied}/20 RPCs survived 20% loss");
        assert!(sim.world_mut().rpc.stats().retries > 0);
        assert_eq!(sim.world_mut().rpc.pending_calls(), 0);
    }

    #[test]
    fn late_reply_after_timeout_is_counted_not_delivered() {
        // Timeout far below the ~20 ms round trip: every attempt's reply arrives after the
        // call already gave up.
        let config = RpcConfig {
            timeout: SimDuration::from_millis(1),
            max_attempts: 2,
        };
        let w = world(2, 0.0, config);
        let mut sim: NetSim<World> = Simulation::with_events(w, 1);
        call_tagged(&mut sim, VNodeId(0), VNodeId(1), 3);
        sim.run();
        assert_eq!(sim.world().outcomes, vec![(3, false, 2)]);
        let stats = sim.world_mut().rpc.stats();
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.late_replies, 2, "both attempts' replies arrived late");
    }
}
