//! Sender-side wire tampering and application-level misbehavior flags.
//!
//! This module holds the *plain data* half of the adversary subsystem: what a hostile node does
//! to the frames it sends ([`TamperSpec`]) and which application-level deviations its protocol
//! logic applies ([`Misbehavior`]). The policy half — the composable `Behavior` trait that
//! fills these structs in — lives in the core crate's `adversary` module, so hostile *code*
//! never sits inside honest protocol paths; the data plane only ever sees inert flag structs.
//!
//! Tampering is entirely sender-side and envelope-only: a tamper point may swallow, duplicate
//! or delay a fresh outbound frame, but it never forges traffic on behalf of another node and
//! never touches the receive path. With no tamper point installed the data plane draws zero
//! extra randomness and executes the exact frozen event sequence of an honest run.

use p2plab_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// What a byzantine node's tamper point does to each fresh frame it transmits.
///
/// All rates are per-frame probabilities drawn from the node's own split RNG stream (never the
/// simulation's global stream), so adversarial runs stay byte-reproducible and shard-safe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TamperSpec {
    /// Probability a fresh frame is silently swallowed before it reaches the wire.
    pub drop_rate: f64,
    /// Probability an extra copy of a duplicable frame is injected right behind the original.
    pub duplicate_rate: f64,
    /// Fixed extra delay added to every fresh frame (reply withholding / slowloris-style
    /// stalling). Envelope-only: the frame still crosses the wire with honest timing after the
    /// hold, so conservative-lookahead sharding stays sound.
    pub delay: SimDuration,
}

impl TamperSpec {
    /// A spec that changes nothing.
    pub fn none() -> TamperSpec {
        TamperSpec {
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            delay: SimDuration::ZERO,
        }
    }

    /// True if this spec would never alter any frame.
    pub fn is_noop(&self) -> bool {
        self.drop_rate <= 0.0 && self.duplicate_rate <= 0.0 && self.delay.is_zero()
    }

    /// Folds another spec into this one (rates saturate at 1, delays add).
    pub fn stack(&mut self, other: TamperSpec) {
        self.drop_rate = (self.drop_rate + other.drop_rate).min(1.0);
        self.duplicate_rate = (self.duplicate_rate + other.duplicate_rate).min(1.0);
        self.delay += other.delay;
    }
}

impl Default for TamperSpec {
    fn default() -> Self {
        TamperSpec::none()
    }
}

/// Application-level deviations a byzantine node's protocol logic applies.
///
/// Each flag is consulted by the workload's protocol code at a single decision point; honest
/// nodes carry the all-`false` default and take the exact honest code path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Misbehavior {
    /// Never answer data requests (ack/serve withholding — a free-rider).
    pub withhold_serves: bool,
    /// Advertise a garbage (all-set) bitfield / inflated inventory instead of real holdings.
    pub garbage_advertise: bool,
    /// Serve corrupted payloads: data that fails the receiver's integrity check.
    pub corrupt_data: bool,
    /// Give different (rotated / fabricated) answers to different askers.
    pub equivocate: bool,
    /// Receive protocol traffic normally but never forward it on (gossip suppression).
    pub suppress_forward: bool,
}

impl Misbehavior {
    /// True if every flag is off (an honest node).
    pub fn is_honest(&self) -> bool {
        *self == Misbehavior::default()
    }

    /// Folds another set of flags into this one.
    pub fn stack(&mut self, other: Misbehavior) {
        self.withhold_serves |= other.withhold_serves;
        self.garbage_advertise |= other.garbage_advertise;
        self.corrupt_data |= other.corrupt_data;
        self.equivocate |= other.equivocate;
        self.suppress_forward |= other.suppress_forward;
    }
}

/// Per-node tamper state installed on the network: the spec plus the node's own RNG stream.
#[derive(Debug, Clone)]
pub struct TamperState {
    /// What to do to each fresh frame.
    pub spec: TamperSpec,
    /// The node's private randomness (split off the adversary seed, never the global stream).
    pub rng: SimRng,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_detection() {
        assert!(TamperSpec::none().is_noop());
        assert!(TamperSpec::default().is_noop());
        let mut s = TamperSpec::none();
        s.drop_rate = 0.1;
        assert!(!s.is_noop());
        let mut s = TamperSpec::none();
        s.delay = SimDuration::from_millis(5);
        assert!(!s.is_noop());
    }

    #[test]
    fn stacking_saturates_rates_and_adds_delays() {
        let mut a = TamperSpec {
            drop_rate: 0.7,
            duplicate_rate: 0.2,
            delay: SimDuration::from_millis(10),
        };
        a.stack(TamperSpec {
            drop_rate: 0.6,
            duplicate_rate: 0.1,
            delay: SimDuration::from_millis(5),
        });
        assert_eq!(a.drop_rate, 1.0);
        assert!((a.duplicate_rate - 0.3).abs() < 1e-12);
        assert_eq!(a.delay, SimDuration::from_millis(15));
    }

    #[test]
    fn misbehavior_defaults_honest_and_stacks() {
        let mut m = Misbehavior::default();
        assert!(m.is_honest());
        m.stack(Misbehavior {
            withhold_serves: true,
            ..Misbehavior::default()
        });
        assert!(!m.is_honest());
        assert!(m.withhold_serves && !m.corrupt_data);
    }
}
