//! Edge-case integration tests of the session/lane transport API: connection teardown races,
//! listen/connect races, retransmit accounting under loss, loopback delivery and multi-port
//! datagram demultiplexing.

use p2plab_net::{
    AccessLinkClass, ConnState, Endpoint, GroupId, LaneKind, NetHost, NetSim, Network,
    NetworkConfig, SocketAddr, TopologySpec, TransportEvent, VNodeId, VirtAddr,
};
use p2plab_sim::{SimDuration, Simulation};

/// Records every transport event as `(node, label)`.
struct World {
    net: Network,
    seen: Vec<(VNodeId, String)>,
}

impl NetHost for World {
    type Payload = u32;

    fn network(&mut self) -> &mut Network {
        &mut self.net
    }

    fn on_transport_event(sim: &mut NetSim<Self>, node: VNodeId, ev: TransportEvent<u32>) {
        let label = match ev {
            TransportEvent::Connected { .. } => "connected".into(),
            TransportEvent::Refused { .. } => "refused".into(),
            TransportEvent::Accepted { .. } => "accepted".into(),
            TransportEvent::Message { lane, payload, .. } => format!("msg:{lane:?}:{payload}"),
            TransportEvent::Datagram {
                to_port, payload, ..
            } => format!("dgram:{to_port}:{payload}"),
            TransportEvent::Closed { .. } => "closed".into(),
        };
        sim.world_mut().seen.push((node, label));
    }
}

/// `n` virtual nodes on one machine over the given access link.
fn world(n: usize, link: AccessLinkClass) -> World {
    let topo = TopologySpec::uniform("edge", n, link);
    let mut net = Network::new(NetworkConfig::default(), topo);
    let m = net.add_machine("pm0", VirtAddr::new(192, 168, 38, 1));
    for i in 0..n {
        net.add_vnode(
            m,
            VirtAddr::new(10, 0, 0, 0).offset(i as u32 + 1),
            GroupId(0),
        )
        .unwrap();
    }
    World {
        net,
        seen: Vec::new(),
    }
}

fn lan() -> AccessLinkClass {
    AccessLinkClass::symmetric(10_000_000, SimDuration::from_millis(5))
}

fn labels_of(sim: &NetSim<World>, node: VNodeId) -> Vec<&str> {
    sim.world()
        .seen
        .iter()
        .filter(|(n, _)| *n == node)
        .map(|(_, l)| l.as_str())
        .collect()
}

#[test]
fn close_with_data_in_flight_discards_the_data() {
    let w = world(2, lan());
    let peer = SocketAddr::new(w.net.addr_of(VNodeId(1)), 7000);
    let mut sim: NetSim<World> = Simulation::with_events(w, 1);
    Endpoint::new(VNodeId(1)).bind(&mut sim, 7000).unwrap();
    let ep = Endpoint::new(VNodeId(0));
    let conn = ep.connect(&mut sim, peer).unwrap();
    sim.run();

    // Put a message in flight, then close the connection before it can be delivered. Close is
    // an abortive teardown of the shared connection state (the emulation models conntrack, not
    // a graceful TCP half-close), so the in-flight data reaches a closed connection and is
    // discarded; only the peer's Closed notification survives.
    ep.send(&mut sim, conn, LaneKind::ReliableOrdered, 1024, 7)
        .unwrap();
    ep.close(&mut sim, conn).unwrap();
    sim.run();

    let receiver = labels_of(&sim, VNodeId(1));
    assert!(receiver.contains(&"closed"), "{receiver:?}");
    assert!(
        !receiver.iter().any(|l| l.starts_with("msg:")),
        "data in flight across a close must be discarded: {receiver:?}"
    );
    assert_eq!(
        sim.world_mut().net.connection(conn).unwrap().state,
        ConnState::Closed
    );
    assert_eq!(sim.world_mut().net.vnode(VNodeId(1)).bytes_received, 0);

    // Sending on the closed connection fails immediately.
    assert!(ep
        .send(&mut sim, conn, LaneKind::ReliableOrdered, 10, 8)
        .is_err());
}

#[test]
fn data_arriving_at_closed_connection_is_dropped() {
    // The receiver closes while the sender's message is still walking the pipes: the frame
    // reaches a closed connection and must be discarded, not delivered.
    let w = world(2, lan());
    let peer = SocketAddr::new(w.net.addr_of(VNodeId(1)), 7000);
    let mut sim: NetSim<World> = Simulation::with_events(w, 1);
    Endpoint::new(VNodeId(1)).bind(&mut sim, 7000).unwrap();
    let ep = Endpoint::new(VNodeId(0));
    let conn = ep.connect(&mut sim, peer).unwrap();
    sim.run();

    ep.send(&mut sim, conn, LaneKind::ReliableOrdered, 2048, 9)
        .unwrap();
    // The receiver closes its side in the same instant: the connection is marked closed
    // immediately, while the data frame is still in flight.
    Endpoint::new(VNodeId(1)).close(&mut sim, conn).unwrap();
    sim.run();

    let receiver = labels_of(&sim, VNodeId(1));
    assert!(
        !receiver.iter().any(|l| l.starts_with("msg:")),
        "in-flight data must be discarded at the closed connection: {receiver:?}"
    );
    assert_eq!(sim.world_mut().net.vnode(VNodeId(1)).bytes_received, 0);
}

#[test]
fn connect_racing_a_concurrent_listen() {
    // The SYN is in flight while the destination binds the port: the listener exists by the
    // time the SYN is processed, so the connection is accepted — bind-then-SYN-delivery is the
    // race's benign ordering.
    let w = world(2, lan());
    let addr1 = w.net.addr_of(VNodeId(1));
    let mut sim: NetSim<World> = Simulation::with_events(w, 1);
    let conn = Endpoint::new(VNodeId(0))
        .connect(&mut sim, SocketAddr::new(addr1, 7000))
        .unwrap();
    // Bind 1 ms after the connect: well before the ~10 ms one-way trip of the SYN.
    sim.schedule_in(SimDuration::from_millis(1), |sim| {
        Endpoint::new(VNodeId(1)).bind(sim, 7000).unwrap();
    });
    sim.run();
    assert_eq!(
        sim.world_mut().net.connection(conn).unwrap().state,
        ConnState::Established,
        "a listen registered while the SYN is in flight must accept it"
    );
    assert!(labels_of(&sim, VNodeId(0)).contains(&"connected"));
    assert!(labels_of(&sim, VNodeId(1)).contains(&"accepted"));
}

#[test]
fn connect_losing_the_listen_race_is_refused() {
    // The other ordering: the bind lands after the SYN was already refused. The connection
    // stays refused — the transport does not retroactively accept.
    let w = world(2, lan());
    let addr1 = w.net.addr_of(VNodeId(1));
    let mut sim: NetSim<World> = Simulation::with_events(w, 1);
    let conn = Endpoint::new(VNodeId(0))
        .connect(&mut sim, SocketAddr::new(addr1, 7000))
        .unwrap();
    // Bind long after the SYN arrived and was refused.
    sim.schedule_in(SimDuration::from_secs(1), |sim| {
        Endpoint::new(VNodeId(1)).bind(sim, 7000).unwrap();
    });
    sim.run();
    assert_eq!(
        sim.world_mut().net.connection(conn).unwrap().state,
        ConnState::Refused
    );
    assert!(labels_of(&sim, VNodeId(0)).contains(&"refused"));
    assert!(!labels_of(&sim, VNodeId(1)).contains(&"accepted"));
}

#[test]
fn reliable_lane_retransmit_accounting_under_loss() {
    let w = world(2, lan().with_loss(0.3));
    let peer = SocketAddr::new(w.net.addr_of(VNodeId(1)), 7000);
    let mut sim: NetSim<World> = Simulation::with_events(w, 42);
    Endpoint::new(VNodeId(1)).bind(&mut sim, 7000).unwrap();
    let ep = Endpoint::new(VNodeId(0));
    let conn = ep.connect(&mut sim, peer).unwrap();
    sim.run();
    assert_eq!(
        sim.world_mut().net.connection(conn).unwrap().state,
        ConnState::Established
    );

    // 30 messages on the unordered reliable lane: every one must eventually arrive, and every
    // drop must be visible as a retransmission — never as a datagram drop.
    for i in 0..30 {
        ep.send(&mut sim, conn, LaneKind::ReliableUnordered, 500, i)
            .unwrap();
    }
    sim.run();
    let delivered = labels_of(&sim, VNodeId(1))
        .iter()
        .filter(|l| l.starts_with("msg:ReliableUnordered"))
        .count();
    assert_eq!(delivered, 30, "reliable lane must deliver all messages");
    let stats = sim.world_mut().net.stats();
    assert!(
        stats.retransmissions > 0,
        "30% loss must trigger retransmissions"
    );
    assert_eq!(
        stats.datagrams_dropped, 0,
        "reliable-lane drops are retransmitted, not counted as datagram drops"
    );

    // The unreliable lane on the same connection takes losses instead of retransmitting.
    let retrans_before = stats.retransmissions;
    for i in 0..30 {
        ep.send(&mut sim, conn, LaneKind::UnreliableUnordered, 500, 100 + i)
            .unwrap();
    }
    sim.run();
    let stats = sim.world_mut().net.stats();
    assert_eq!(
        stats.retransmissions, retrans_before,
        "the unreliable lane never retransmits"
    );
    assert!(
        stats.datagrams_dropped > 0,
        "unreliable-lane losses must surface as datagram drops"
    );
}

#[test]
fn same_vnode_loopback_delivery() {
    // A node sends a datagram to its own address: the frame still walks its upload and
    // download pipes (loopback traffic is shaped like everything else in the decentralized
    // model) and is delivered back to the node itself.
    let w = world(1, lan());
    let own = SocketAddr::new(w.net.addr_of(VNodeId(0)), 7001);
    let mut sim: NetSim<World> = Simulation::with_events(w, 1);
    Endpoint::new(VNodeId(0))
        .send_datagram(&mut sim, 7000, own, 256, 5)
        .unwrap();
    sim.run();
    assert_eq!(labels_of(&sim, VNodeId(0)), vec!["dgram:7001:5"]);
    // Both access-link latencies applied: at least 2 x 5 ms even without leaving the node.
    assert!(sim.now().as_millis() >= 10, "delivered at {}", sim.now());
    assert_eq!(sim.world_mut().net.vnode(VNodeId(0)).bytes_received, 256);
    assert_eq!(sim.world_mut().net.vnode(VNodeId(0)).bytes_sent, 256);
}

#[test]
fn datagrams_demux_by_receiving_port() {
    // One vnode bound on two ports: the receiving port must be visible on delivery, otherwise
    // two services on one node cannot tell their traffic apart (the legacy SockEvent dropped
    // it — this is the regression the lane event fixes).
    let w = world(2, lan());
    let addr1 = w.net.addr_of(VNodeId(1));
    let mut sim: NetSim<World> = Simulation::with_events(w, 1);
    let server = Endpoint::new(VNodeId(1));
    server.bind(&mut sim, 8001).unwrap();
    server.bind(&mut sim, 8002).unwrap();
    let client = Endpoint::new(VNodeId(0));
    client
        .send_datagram(&mut sim, 9000, SocketAddr::new(addr1, 8001), 64, 1)
        .unwrap();
    client
        .send_datagram(&mut sim, 9000, SocketAddr::new(addr1, 8002), 64, 2)
        .unwrap();
    sim.run();
    let seen = labels_of(&sim, VNodeId(1));
    assert!(seen.contains(&"dgram:8001:1"), "{seen:?}");
    assert!(seen.contains(&"dgram:8002:2"), "{seen:?}");
}
