//! Property-based tests of the network substrate: addressing, pipes and firewalls.

use p2plab_net::{Direction, Firewall, Pipe, PipeConfig, PipeId, Rule, Subnet, VirtAddr};
use p2plab_sim::{SimDuration, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// Address parsing and display round-trip for every possible address.
    #[test]
    fn addr_display_parse_roundtrip(a in any::<u8>(), b in any::<u8>(), c in any::<u8>(), d in any::<u8>()) {
        let addr = VirtAddr::new(a, b, c, d);
        let parsed: VirtAddr = addr.to_string().parse().unwrap();
        prop_assert_eq!(parsed, addr);
    }

    /// Every host generated from a subnet is contained in it, and host addresses are distinct.
    #[test]
    fn subnet_hosts_are_members(base in any::<u32>(), prefix in 8u8..=30, count in 1u32..100) {
        let subnet = Subnet::new(VirtAddr(base), prefix);
        let count = count.min(subnet.size().saturating_sub(1) as u32);
        let mut seen = std::collections::HashSet::new();
        for i in 0..count {
            let h = subnet.host_at(i);
            prop_assert!(subnet.contains(h), "{h} not in {subnet}");
            prop_assert!(seen.insert(h), "duplicate host {h}");
        }
    }

    /// A lossless FIFO pipe preserves packet order and never forwards faster than its
    /// configured bandwidth allows.
    #[test]
    fn pipe_is_fifo_and_rate_limited(
        sizes in prop::collection::vec(64u64..16_384, 1..100),
        bps in 56_000u64..10_000_000,
        delay_ms in 0u64..200,
        gap_us in prop::collection::vec(0u64..100_000, 1..100),
    ) {
        let mut pipe = Pipe::new(
            PipeConfig::shaped(bps, SimDuration::from_millis(delay_ms)).with_queue_limit(None),
        );
        let mut rng = SimRng::new(1);
        let mut now = SimTime::ZERO;
        let mut exits = Vec::new();
        let mut total_bytes = 0u64;
        for (i, &size) in sizes.iter().enumerate() {
            now += SimDuration::from_micros(gap_us[i % gap_us.len()]);
            match pipe.enqueue(now, size, &mut rng) {
                p2plab_net::EnqueueOutcome::Forwarded { exit, .. } => {
                    // Never earlier than arrival + own serialization + delay.
                    let earliest = now
                        + SimDuration::transmission(size, bps)
                        + SimDuration::from_millis(delay_ms);
                    prop_assert!(exit >= earliest);
                    exits.push(exit);
                    total_bytes += size;
                }
                other => prop_assert!(false, "unexpected drop: {other:?}"),
            }
        }
        // FIFO: exits are non-decreasing.
        for w in exits.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        // Aggregate rate limit: the last packet cannot leave before all bytes have been
        // serialized at the pipe's rate (plus its propagation delay).
        let last_exit = *exits.last().unwrap();
        let min_finish = SimTime::ZERO
            + SimDuration::transmission(total_bytes, bps)
            + SimDuration::from_millis(delay_ms);
        prop_assert!(
            last_exit + SimDuration::from_nanos(1) >= min_finish,
            "forwarded {total_bytes} bytes faster than {bps} bps allows"
        );
    }

    /// Firewall classification: the number of rules examined never exceeds the rule count, the
    /// evaluation cost is proportional to it, and matching pipes appear in rule order.
    #[test]
    fn firewall_examination_is_bounded_and_ordered(
        dummy_before in 0usize..500,
        dummy_after in 0usize..500,
        n_pipes in 1usize..5,
    ) {
        let mut fw = Firewall::new(SimDuration::from_nanos(50));
        fw.add_dummy_rules(dummy_before);
        for i in 0..n_pipes {
            fw.add_rule(Rule::pipe(Subnet::any(), Subnet::any(), Direction::Out, PipeId(i)));
        }
        fw.add_dummy_rules(dummy_after);
        let c = fw.classify(VirtAddr::new(10, 0, 0, 1), VirtAddr::new(10, 0, 0, 2), Direction::Out);
        prop_assert!(c.accepted);
        prop_assert_eq!(c.rules_examined, fw.rule_count());
        prop_assert_eq!(c.evaluation_cost, SimDuration::from_nanos(50) * fw.rule_count() as u64);
        let expected: Vec<PipeId> = (0..n_pipes).map(PipeId).collect();
        prop_assert_eq!(&c.pipes[..], expected.as_slice());
        // Incoming traffic does not match Out rules.
        let c_in = fw.classify(VirtAddr::new(10, 0, 0, 1), VirtAddr::new(10, 0, 0, 2), Direction::In);
        prop_assert!(c_in.pipes.is_empty());
    }

    /// Random loss drops roughly the configured fraction of packets over many trials.
    #[test]
    fn pipe_loss_rate_is_calibrated(loss_pct in 1u32..99) {
        let loss = loss_pct as f64 / 100.0;
        let mut pipe = Pipe::new(PipeConfig::delay_only(SimDuration::ZERO).with_loss(loss));
        let mut rng = SimRng::new(7);
        let n = 4_000;
        let dropped = (0..n)
            .filter(|_| {
                matches!(
                    pipe.enqueue(SimTime::ZERO, 100, &mut rng),
                    p2plab_net::EnqueueOutcome::Dropped(_)
                )
            })
            .count();
        let observed = dropped as f64 / n as f64;
        prop_assert!((observed - loss).abs() < 0.05, "loss {loss} observed {observed}");
    }
}
