//! Property-based tests of the protocol-depth layer: fragment-header and ack-bitfield wire
//! round-trips, fragment-plan arithmetic, and the reassembler/ack-tracker invariants under
//! arbitrary (including adversarial) input sequences.

use p2plab_net::proto::{
    fragment_count, fragment_size, seq_newer, AckBitfield, AckTracker, FragHeader, FragOutcome,
    Reassembler, SentWindow,
};
use p2plab_sim::SimTime;
use proptest::prelude::*;

proptest! {
    /// Fragment headers survive an encode → decode round-trip for every field value.
    #[test]
    fn frag_header_roundtrip(msg in any::<u16>(), index in any::<u16>(), count in any::<u16>(), seq in any::<u16>()) {
        let h = FragHeader { msg, index, count, seq };
        prop_assert_eq!(FragHeader::decode(h.encode()), h);
    }

    /// Ack bitfields survive an encode → decode round-trip for every field value.
    #[test]
    fn ack_bitfield_roundtrip(latest in any::<u16>(), bits in any::<u32>()) {
        let a = AckBitfield { latest, bits };
        prop_assert_eq!(AckBitfield::decode(a.encode()), a);
    }

    /// Sequence comparison is an antisymmetric total order on any window smaller than half the
    /// sequence space.
    #[test]
    fn seq_newer_is_antisymmetric(a in any::<u16>(), delta in 1u16..0x8000) {
        let b = a.wrapping_add(delta);
        prop_assert!(seq_newer(b, a));
        prop_assert!(!seq_newer(a, b));
        prop_assert!(!seq_newer(a, a));
    }

    /// A fragment plan covers the message exactly: fragment sizes sum to the message size,
    /// every fragment fits the MTU, and only the last fragment may be short.
    #[test]
    fn fragment_plan_covers_message(size in 1u64..1_000_000, mtu in 1u64..20_000) {
        let count = fragment_count(size, mtu);
        let sizes: Vec<u64> = (0..count).map(|i| fragment_size(size, mtu, i, count)).collect();
        prop_assert_eq!(sizes.iter().sum::<u64>(), size);
        for (i, &s) in sizes.iter().enumerate() {
            prop_assert!(s <= mtu, "fragment {i} of {count} is {s} > mtu {mtu}");
            if i + 1 < sizes.len() {
                prop_assert_eq!(s, mtu, "only the last fragment may be short");
            } else {
                prop_assert!(s > 0, "empty trailing fragment");
            }
        }
    }

    /// The reassembler fed arbitrary fragment triples never panics, completes each message at
    /// most once, and only completes a message after seeing all of its fragment indices.
    #[test]
    fn reassembler_never_panics_and_completes_at_most_once(
        frags in prop::collection::vec((0u16..64, any::<u16>(), 0u16..40), 1..400),
    ) {
        let mut r = Reassembler::default();
        let mut completed = std::collections::HashSet::new();
        let mut seen: std::collections::HashMap<u16, std::collections::HashSet<u16>> =
            std::collections::HashMap::new();
        for (msg, index, count) in frags {
            match r.accept(msg, index, count) {
                FragOutcome::Complete => {
                    // Exactly-once: a message never completes twice (msg ids stay far below
                    // the 0x8000 forgetting window here, so no legitimate re-completion).
                    prop_assert!(completed.insert(msg), "message {msg} completed twice");
                    seen.entry(msg).or_default().insert(index);
                    // Completion requires every index 0..count to have been accepted.
                    let got = &seen[&msg];
                    prop_assert!(count >= 1 && (0..count).all(|i| got.contains(&i)),
                        "message {msg} completed with indices {got:?} of count {count}");
                }
                FragOutcome::Pending { .. } => {
                    seen.entry(msg).or_default().insert(index);
                    prop_assert!(!completed.contains(&msg));
                }
                FragOutcome::Ignored => {}
            }
        }
    }

    /// The ack tracker's bitfield only ever claims sequences that were actually recorded.
    #[test]
    fn ack_bitfield_is_sound(seqs in prop::collection::vec(any::<u16>(), 1..200)) {
        let mut t = AckTracker::default();
        let mut recorded = std::collections::HashSet::new();
        for s in &seqs {
            t.record(*s);
            recorded.insert(*s);
        }
        let field = t.bitfield();
        for off in 0u16..=32 {
            let s = field.latest.wrapping_sub(off);
            if field.contains(s) {
                prop_assert!(recorded.contains(&s), "bitfield claims unrecorded seq {s}");
            }
        }
    }

    /// A sent window only acknowledges entries it recorded, each at most once, regardless of
    /// the ack bitfields thrown at it.
    #[test]
    fn sent_window_acks_are_a_subset_of_sends(
        sends in prop::collection::vec(1u64..2000, 1..100),
        acks in prop::collection::vec((any::<u16>(), any::<u32>()), 0..50),
    ) {
        let mut w = SentWindow::default();
        for (i, &bytes) in sends.iter().enumerate() {
            w.on_sent(i as u16, bytes, SimTime::ZERO);
        }
        let mut acked = std::collections::HashSet::new();
        let mut acked_bytes = 0u64;
        for (latest, bits) in acks {
            w.on_ack(&AckBitfield { latest, bits }, |wire_bytes, _sent_at| {
                acked_bytes += wire_bytes;
                // Each callback corresponds to a distinct recorded send of that exact size.
                let idx = sends.iter().enumerate()
                    .position(|(i, &b)| b == wire_bytes && !acked.contains(&i));
                assert!(idx.is_some(), "acked bytes {wire_bytes} never sent");
                acked.insert(idx.unwrap());
            });
        }
        prop_assert!(acked.len() <= sends.len());
        prop_assert!(acked_bytes <= sends.iter().sum::<u64>());
        prop_assert!(w.in_flight() <= sends.len());
    }
}
