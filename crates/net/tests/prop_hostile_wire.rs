//! Hostile wire-path properties: arbitrary bytes into the frame decoders and forged,
//! duplicate and late correlation ids into the RPC table.
//!
//! `prop_proto.rs` checks the struct → bytes → struct direction; this file drives the
//! opposite, adversarial direction: every byte string a byzantine peer could put on the wire
//! must decode without panicking (and re-encode to the same bytes — the decoders are total
//! bijections, no canonicalization a forger could exploit), and a [`RpcTable`] bombarded with
//! responses that correlate to nothing must swallow every one of them without completing a
//! call, double-completing one, or corrupting its accounting.

use p2plab_net::proto::{AckBitfield, FragHeader};
use p2plab_net::rpc::{self, RpcConfig, RpcHost, RpcId, RpcOutcome, RpcPayload, RpcTable};
use p2plab_net::{
    AccessLinkClass, GroupId, NetHost, NetSim, Network, NetworkConfig, SocketAddr, TopologySpec,
    TransportEvent, VNodeId, VirtAddr,
};
use p2plab_sim::{SimDuration, Simulation};
use proptest::prelude::*;

/// Minimal echo-with-increment RPC world (the `rpc` module's doc pattern): node 1 answers
/// `n` with `n + 1`; completed outcomes are recorded as `(tag, body)` pairs.
struct World {
    net: Network,
    rpc: RpcTable<World>,
    outcomes: Vec<(u64, u64)>,
}

impl NetHost for World {
    type Payload = RpcPayload<u64>;

    fn network(&mut self) -> &mut Network {
        &mut self.net
    }

    fn on_transport_event(
        sim: &mut NetSim<Self>,
        node: VNodeId,
        ev: TransportEvent<RpcPayload<u64>>,
    ) {
        let leftover = rpc::dispatch(sim, node, ev);
        assert!(leftover.is_none(), "only RPC traffic in this world");
    }
}

impl RpcHost for World {
    type Body = u64;

    fn rpc_table(&mut self) -> &mut RpcTable<World> {
        &mut self.rpc
    }

    fn serve(
        _sim: &mut NetSim<Self>,
        _node: VNodeId,
        _from: SocketAddr,
        _port: u16,
        body: u64,
    ) -> Option<(u64, u64)> {
        Some((body + 1, 16))
    }
}

fn world() -> World {
    let link = AccessLinkClass::symmetric(10_000_000, SimDuration::from_millis(5));
    let topo = TopologySpec::uniform("hostile-rpc", 2, link);
    let mut net = Network::new(NetworkConfig::default(), topo);
    let m = net.add_machine("pm0", VirtAddr::new(192, 168, 38, 1));
    for i in 0..2 {
        net.add_vnode(
            m,
            VirtAddr::new(10, 0, 0, 0).offset(i as u32 + 1),
            GroupId(0),
        )
        .unwrap();
    }
    World {
        net,
        rpc: RpcTable::new(RpcConfig::default()),
        outcomes: Vec::new(),
    }
}

/// Injects a forged response datagram straight into the RPC dispatcher at `node`, exactly as
/// a byzantine peer delivering a fabricated correlation id would.
fn inject_forged(sim: &mut NetSim<World>, node: VNodeId, id: u64, body: u64) {
    let from = SocketAddr::new(VirtAddr::new(10, 0, 0, 99), 4000);
    let leftover = rpc::dispatch(
        sim,
        node,
        TransportEvent::Datagram {
            from,
            to_port: 4000,
            payload: RpcPayload::Response {
                id: RpcId(id),
                body,
            },
            size: 16,
        },
    );
    assert!(leftover.is_none(), "a response is always consumed");
}

proptest! {
    /// Frame header decoding is total and byte-exact: every 8-byte string a hostile peer puts
    /// on the wire decodes without panicking and re-encodes to the very same bytes — there is
    /// no canonicalization step whose asymmetry a forger could exploit.
    #[test]
    fn frag_header_decode_is_total_on_arbitrary_bytes(raw in any::<u64>()) {
        let bytes = raw.to_le_bytes();
        let h = FragHeader::decode(bytes);
        prop_assert_eq!(h.encode(), bytes);
    }

    /// Same totality for the 6-byte ack bitfield wire shape.
    #[test]
    fn ack_bitfield_decode_is_total_on_arbitrary_bytes(latest in any::<u16>(), bits in any::<u32>()) {
        let mut bytes = [0u8; 6];
        bytes[..2].copy_from_slice(&latest.to_le_bytes());
        bytes[2..].copy_from_slice(&bits.to_le_bytes());
        let a = AckBitfield::decode(bytes);
        prop_assert_eq!(a.encode(), bytes);
    }

    /// The RPC table under a correlation-id forgery barrage: responses with ids that were
    /// never allocated, responses addressed to the wrong node (a live id arriving anywhere
    /// but its caller), and duplicates of already-completed calls are all counted as
    /// `late_replies` and swallowed — no panic, no spurious completion, no double delivery,
    /// and the real calls still complete exactly once with the right bodies.
    #[test]
    fn forged_duplicate_and_late_correlation_ids_are_suppressed(
        calls in 0u64..6,
        forged in prop::collection::vec((any::<u64>(), 0u8..2, any::<u64>()), 1..60),
    ) {
        let mut sim: NetSim<World> = Simulation::with_events(world(), 1);
        for tag in 0..calls {
            let remote = SocketAddr::new(sim.world_mut().net.addr_of(VNodeId(1)), 4000);
            rpc::call(&mut sim, VNodeId(0), 4000, remote, tag, 32, move |sim, outcome| {
                match outcome {
                    RpcOutcome::Reply { body, .. } => sim.world_mut().outcomes.push((tag, body)),
                    RpcOutcome::TimedOut { .. } => panic!("lossless link never times out"),
                }
            }).unwrap();
        }

        // Phase 1 — while every call is pending: forge ids that were never allocated at the
        // caller (live ids are 0..calls; `calls + raw/2` cannot collide or overflow), and
        // arbitrary ids at the serving node, where even a live id must fail the caller check.
        for &(raw, node, body) in &forged {
            match node {
                0 => inject_forged(&mut sim, VNodeId(0), calls + (raw >> 1), body),
                _ => inject_forged(&mut sim, VNodeId(1), raw, body),
            }
        }
        let stats = sim.world_mut().rpc.stats();
        prop_assert_eq!(stats.late_replies, forged.len() as u64);
        prop_assert_eq!(stats.replies, 0, "a forged id completed a call");
        prop_assert_eq!(sim.world_mut().rpc.pending_calls(), calls as usize);

        // The real traffic is unharmed: every call completes with the served body.
        sim.run();
        let mut outcomes = sim.world().outcomes.clone();
        outcomes.sort_unstable();
        let expected: Vec<(u64, u64)> = (0..calls).map(|t| (t, t + 1)).collect();
        prop_assert_eq!(outcomes, expected);

        // Phase 2 — after completion: replay the *real* correlation ids. They are duplicates
        // of completed calls now, and every one must be counted late, not re-delivered.
        for tag in 0..calls {
            inject_forged(&mut sim, VNodeId(0), tag, 0xdead);
        }
        let stats = sim.world_mut().rpc.stats();
        prop_assert_eq!(stats.calls, calls);
        prop_assert_eq!(stats.replies, calls);
        prop_assert_eq!(stats.timeouts, 0);
        prop_assert_eq!(stats.late_replies, forged.len() as u64 + calls);
        prop_assert_eq!(sim.world_mut().rpc.pending_calls(), 0);
        prop_assert_eq!(sim.world().outcomes.len() as u64, calls, "a duplicate id re-delivered");
    }
}
