//! End-to-end tests of the protocol-depth layer: MTU fragmentation with exactly-once
//! delivery, ack-bitfield-driven congestion control, selective retransmission under loss,
//! reassembly timeouts, and link conditioners (jitter, duplication, Gilbert–Elliott burst
//! loss) — all through the public `Endpoint` API over the full emulated packet walk.

use p2plab_net::{
    AccessLinkClass, BurstLoss, CcKind, ConnId, Endpoint, GroupId, LaneKind, LinkCondition,
    NetHost, NetSim, Network, NetworkConfig, SocketAddr, TopologySpec, TransportConfig,
    TransportEvent, VNodeId, VirtAddr,
};
use p2plab_sim::{SimDuration, Simulation};

/// Records every delivered message/datagram payload per node.
struct World {
    net: Network,
    delivered: Vec<(VNodeId, u32, u64)>,
}

impl NetHost for World {
    type Payload = u32;

    fn network(&mut self) -> &mut Network {
        &mut self.net
    }

    fn on_transport_event(sim: &mut NetSim<Self>, node: VNodeId, ev: TransportEvent<u32>) {
        match ev {
            TransportEvent::Message { payload, size, .. }
            | TransportEvent::Datagram { payload, size, .. } => {
                sim.world_mut().delivered.push((node, payload, size));
            }
            _ => {}
        }
    }
}

/// Two virtual nodes on separate machines over `link`, with the given transport config.
fn world(link: AccessLinkClass, transport: TransportConfig) -> World {
    let topo = TopologySpec::uniform("proto", 2, link);
    let config = NetworkConfig {
        transport,
        ..NetworkConfig::default()
    };
    let mut net = Network::new(config, topo);
    for i in 0..2u8 {
        let m = net.add_machine(format!("pm{i}"), VirtAddr::new(192, 168, 38, i + 1));
        net.add_vnode(m, VirtAddr::new(10, 0, 0, i + 1), GroupId(0))
            .unwrap();
    }
    World {
        net,
        delivered: Vec::new(),
    }
}

/// Establishes node 0 → node 1 and returns the connection.
fn establish(sim: &mut NetSim<World>) -> ConnId {
    let peer = SocketAddr::new(VirtAddr::new(10, 0, 0, 2), 7000);
    Endpoint::new(VNodeId(1)).bind(sim, 7000).unwrap();
    let conn = Endpoint::new(VNodeId(0)).connect(sim, peer).unwrap();
    sim.run();
    conn
}

fn payloads_at(sim: &NetSim<World>, node: VNodeId) -> Vec<u32> {
    sim.world()
        .delivered
        .iter()
        .filter(|(n, _, _)| *n == node)
        .map(|(_, p, _)| *p)
        .collect()
}

#[test]
fn fragmentation_delivers_each_message_exactly_once() {
    let transport = TransportConfig {
        mtu: Some(1500),
        ..TransportConfig::default()
    };
    let w = world(
        AccessLinkClass::symmetric(10_000_000, SimDuration::from_millis(5)),
        transport,
    );
    let mut sim: NetSim<World> = Simulation::with_events(w, 42);
    let conn = establish(&mut sim);
    let ep = Endpoint::new(VNodeId(0));
    for i in 0..10u32 {
        ep.send(&mut sim, conn, LaneKind::ReliableOrdered, 16 * 1024, i)
            .unwrap();
    }
    sim.run();
    let mut got = payloads_at(&sim, VNodeId(1));
    got.sort_unstable();
    assert_eq!(got, (0..10).collect::<Vec<u32>>());
    // Every delivery reports the full message size, not a fragment's.
    assert!(sim
        .world()
        .delivered
        .iter()
        .all(|&(_, _, size)| size == 16 * 1024));
    let stats = sim.world_mut().net.stats();
    // 16 KiB at a 1500-byte MTU is 11 fragments per message.
    assert_eq!(stats.fragments_sent, 10 * 11);
    // Reliable-lane fragments are acknowledged.
    assert!(stats.acks_sent >= stats.fragments_sent);
    // Byte accounting is message-level, exactly as on the legacy path.
    assert_eq!(
        sim.world_mut().net.vnode(VNodeId(1)).bytes_received,
        10 * 16 * 1024
    );
}

#[test]
fn aimd_grows_its_window_on_a_clean_link() {
    let transport = TransportConfig {
        mtu: Some(1200),
        congestion: CcKind::Aimd,
        ..TransportConfig::default()
    };
    let w = world(
        AccessLinkClass::symmetric(10_000_000, SimDuration::from_millis(5)),
        transport,
    );
    let mut sim: NetSim<World> = Simulation::with_events(w, 42);
    let conn = establish(&mut sim);
    let initial = sim.world_mut().net.cwnd_mean_bytes();
    let ep = Endpoint::new(VNodeId(0));
    for i in 0..50u32 {
        ep.send(&mut sim, conn, LaneKind::ReliableOrdered, 16 * 1024, i)
            .unwrap();
        sim.run();
    }
    assert_eq!(payloads_at(&sim, VNodeId(1)).len(), 50);
    let grown = sim.world_mut().net.cwnd_mean_bytes().unwrap();
    // Acks flowed back, so the sender's window must have grown past its initial value
    // (the mean includes the idle reverse direction, so compare against the mean).
    assert!(
        initial.is_none_or(|w0| grown > w0),
        "cwnd mean {grown} vs initial {initial:?}"
    );
}

#[test]
fn lossy_link_triggers_selective_retransmits_and_still_delivers() {
    let transport = TransportConfig {
        mtu: Some(1500),
        congestion: CcKind::Aimd,
        ..TransportConfig::default()
    };
    let link = AccessLinkClass::symmetric(10_000_000, SimDuration::from_millis(5)).with_loss(0.2);
    let w = world(link, transport);
    let mut sim: NetSim<World> = Simulation::with_events(w, 42);
    let conn = establish(&mut sim);
    let ep = Endpoint::new(VNodeId(0));
    for i in 0..20u32 {
        ep.send(&mut sim, conn, LaneKind::ReliableOrdered, 16 * 1024, i)
            .unwrap();
    }
    sim.run();
    let mut got = payloads_at(&sim, VNodeId(1));
    got.sort_unstable();
    assert_eq!(
        got,
        (0..20).collect::<Vec<u32>>(),
        "exactly-once despite loss"
    );
    let stats = sim.world_mut().net.stats();
    assert!(
        stats.selective_retransmits > 0,
        "20% loss must retransmit fragments"
    );
    // Only lost fragments are retransmitted — far fewer retransmits than fragments.
    assert!(stats.selective_retransmits < stats.fragments_sent);
}

#[test]
fn burst_loss_and_duplication_preserve_exactly_once() {
    let transport = TransportConfig {
        mtu: Some(1500),
        congestion: CcKind::Aimd,
        ..TransportConfig::default()
    };
    let condition = LinkCondition::none()
        .with_jitter(SimDuration::from_millis(3))
        .with_duplication(0.1)
        .with_burst(BurstLoss::new(0.05, 0.25, 0.9));
    let link = AccessLinkClass::symmetric(10_000_000, SimDuration::from_millis(5))
        .with_condition(Some(condition));
    let w = world(link, transport);
    let mut sim: NetSim<World> = Simulation::with_events(w, 2006);
    let conn = establish(&mut sim);
    let ep = Endpoint::new(VNodeId(0));
    for i in 0..20u32 {
        ep.send(&mut sim, conn, LaneKind::ReliableOrdered, 16 * 1024, i)
            .unwrap();
    }
    sim.run();
    let mut got = payloads_at(&sim, VNodeId(1));
    got.sort_unstable();
    // Duplicated fragments are deduplicated by the reassembler: nothing arrives twice. Burst
    // losses are repaired by selective retransmission up to the lane's bounded attempts, so
    // nearly everything arrives once (residual loss past max attempts is app-level territory).
    let mut dedup = got.clone();
    dedup.dedup();
    assert_eq!(
        dedup, got,
        "duplicated fragments must not duplicate messages"
    );
    assert!(
        got.len() >= 18,
        "only {} of 20 messages survived",
        got.len()
    );
    assert!(got.iter().all(|&p| p < 20));
    let stats = sim.world_mut().net.stats();
    assert!(stats.selective_retransmits > 0, "bursts must cause losses");
}

#[test]
fn incomplete_unreliable_messages_time_out() {
    let transport = TransportConfig {
        mtu: Some(1000),
        reassembly_timeout: SimDuration::from_secs(5),
        ..TransportConfig::default()
    };
    let link = AccessLinkClass::symmetric(10_000_000, SimDuration::from_millis(5)).with_loss(0.4);
    let w = world(link, transport);
    let mut sim: NetSim<World> = Simulation::with_events(w, 42);
    let conn = establish(&mut sim);
    let ep = Endpoint::new(VNodeId(0));
    // Unreliable lane: lost fragments are never retransmitted, so most multi-fragment
    // messages stay incomplete and are discarded on timeout.
    for i in 0..50u32 {
        ep.send(&mut sim, conn, LaneKind::UnreliableUnordered, 8 * 1024, i)
            .unwrap();
    }
    sim.run();
    let stats = sim.world_mut().net.stats();
    assert!(
        stats.reassembly_timeouts > 0,
        "40% loss on 9-fragment unreliable messages must strand reassemblies"
    );
    // Whatever did complete was delivered at most once.
    let got = payloads_at(&sim, VNodeId(1));
    let mut dedup = got.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), got.len(), "no duplicate deliveries");
}

#[test]
fn default_config_keeps_the_legacy_wire_path() {
    // With the default transport config the proto layer must stay entirely cold: no
    // fragments, no acks, no proto state — the byte-identity pin's precondition.
    let w = world(
        AccessLinkClass::bittorrent_dsl(),
        TransportConfig::default(),
    );
    let mut sim: NetSim<World> = Simulation::with_events(w, 42);
    let conn = establish(&mut sim);
    let ep = Endpoint::new(VNodeId(0));
    for i in 0..5u32 {
        ep.send(&mut sim, conn, LaneKind::ReliableOrdered, 16 * 1024, i)
            .unwrap();
    }
    sim.run();
    assert_eq!(payloads_at(&sim, VNodeId(1)).len(), 5);
    let stats = sim.world_mut().net.stats();
    assert_eq!(stats.fragments_sent, 0);
    assert_eq!(stats.acks_sent, 0);
    assert_eq!(stats.selective_retransmits, 0);
    assert_eq!(sim.world_mut().net.cwnd_mean_bytes(), None);
    assert!(!sim.world_mut().net.transport_active());
}
